// Package obs provides the observability substrate shared by every
// cycle-time engine: lock-free counters for the quantities that
// dominate latch-analysis cost (simplex pivots, departure-slide
// iterations, Bellman–Ford probes, simulation trials), wall-clock
// timers for named solver stages, an optional structured trace sink,
// and pprof labels so CPU profiles attribute samples to engine phases.
//
// A *Rec travels down a solve through its context.Context (With/From),
// so deep layers report progress without widening their signatures.
// Every method is safe on a nil receiver and safe for concurrent use;
// counters remain readable while a solve is still running (or after it
// was cancelled), which is what gives callers partial-progress
// statistics on abort.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one monotonically increasing solve statistic.
type Counter int

// The counters the engines report. Each engine touches the subset that
// is meaningful for its algorithm; the rest stay zero.
const (
	// Pivots counts simplex pivot operations (LP-backed engines).
	Pivots Counter = iota
	// LPRows counts generated LP constraint rows.
	LPRows
	// SlideIterations counts full passes of the MLP departure-update
	// loop (the paper's steps 3–5).
	SlideIterations
	// Relaxations counts individual departure-time updates.
	Relaxations
	// Probes counts feasibility probes: Bellman–Ford runs (MCR),
	// CheckTc evaluations (NRIP borrowing), bisection steps (Agrawal).
	Probes
	// ProbeRelaxations counts individual edge relaxations performed
	// inside feasibility probes (the work metric of the MCR worklist
	// probe; relaxations-per-probe measures warm-start effectiveness).
	ProbeRelaxations
	// Trials counts Monte-Carlo trials.
	Trials
	// SimCycles counts simulated clock cycles.
	SimCycles
	// SessionHits counts analysis-session queries answered from the
	// memoization cache.
	SessionHits
	// SessionMisses counts analysis-session queries that ran a solve.
	SessionMisses
	// SessionDedup counts analysis-session queries coalesced onto an
	// identical in-flight solve (singleflight).
	SessionDedup
	// LPNnz counts structural nonzeros assembled into sparse LP column
	// stores (the size metric the revised simplex scales with).
	LPNnz
	// LPRefactorizations counts basis LU refactorizations performed by
	// the revised simplex (eta-file resets).
	LPRefactorizations
	// LPWarmStarts counts LP solves that started from a supplied basis
	// instead of phase 1.
	LPWarmStarts
	// LPWarmPivots counts simplex pivots spent inside warm-started
	// solves (a subset of Pivots; warm pivots per warm start versus
	// cold pivots per cold solve measures basis-reuse effectiveness).
	LPWarmPivots
	// VerifyFailures counts certificates rejected by the independent
	// result checker (internal/verify) — answers the supervisor refused
	// to return as-is.
	VerifyFailures
	// Fallbacks counts degradation-ladder hops: each time the engine
	// supervisor abandons one solve strategy and retries on the next
	// rung (warm → cold sparse → dense oracle → MCR cross-check).
	Fallbacks
	// PanicsRecovered counts solver panics caught at the engine
	// boundary and converted to typed errors.
	PanicsRecovered
	// ScratchReuses counts LP solves that ran on a recycled scratch
	// arena (zero-allocation steady state) rather than a fresh one.
	ScratchReuses
	// ScratchGrows counts scratch-arena buffer reallocations — nonzero
	// only while an arena warms up to a new problem shape; a steady
	// workload should drive this to zero.
	ScratchGrows
	// ComponentsTotal counts latch-graph components examined by
	// decomposed solves (the denominator of the incremental-work ratio).
	ComponentsTotal
	// ComponentsResolved counts components actually re-solved by
	// decomposed solves — the rest were answered from per-component
	// caches. An incremental re-solve after one delay edit should
	// resolve exactly the dirty component.
	ComponentsResolved
	// DecompFastPaths counts single-synchronizer acyclic components
	// answered by the closed-form bound, with no LP and no probe.
	DecompFastPaths
	// ProbeRounds counts synchronous relaxation rounds executed by MCR
	// feasibility probes (the depth metric the early witness scan and
	// the chunked engine both shrink; rounds-per-probe measures how fast
	// a probe converges or certifies).
	ProbeRounds
	// ProbeParallelRounds counts probe rounds relaxed by the chunked
	// engine across more than one worker — the parallelism the giant-SCC
	// fast path actually achieved, as opposed to configured.
	ProbeParallelRounds
	// WarmPotentialHits counts probe solves that warm-started from
	// potentials persisted outside the solver (a decomp.State fixpoint
	// seeded into a fresh builder), the SPFA analogue of LPWarmStarts.
	WarmPotentialHits

	numCounters
)

// String returns the snake_case name used in Stats maps and JSON.
func (c Counter) String() string {
	switch c {
	case Pivots:
		return "pivots"
	case LPRows:
		return "lp_rows"
	case SlideIterations:
		return "slide_iterations"
	case Relaxations:
		return "relaxations"
	case Probes:
		return "probes"
	case ProbeRelaxations:
		return "probe_relaxations"
	case Trials:
		return "trials"
	case SimCycles:
		return "sim_cycles"
	case SessionHits:
		return "session_hits"
	case SessionMisses:
		return "session_misses"
	case SessionDedup:
		return "session_dedup"
	case LPNnz:
		return "lp_nnz"
	case LPRefactorizations:
		return "lp_refactorizations"
	case LPWarmStarts:
		return "lp_warm_starts"
	case LPWarmPivots:
		return "lp_warm_pivots"
	case VerifyFailures:
		return "verify_failures"
	case Fallbacks:
		return "fallbacks"
	case PanicsRecovered:
		return "panics_recovered"
	case ScratchReuses:
		return "scratch_reuses"
	case ScratchGrows:
		return "scratch_grows"
	case ComponentsTotal:
		return "components_total"
	case ComponentsResolved:
		return "components_resolved"
	case DecompFastPaths:
		return "decomp_fastpaths"
	case ProbeRounds:
		return "probe_rounds"
	case ProbeParallelRounds:
		return "probe_parallel_rounds"
	case WarmPotentialHits:
		return "warm_potential_hits"
	}
	return fmt.Sprintf("counter_%d", int(c))
}

// Event is one structured trace record emitted by a solver.
type Event struct {
	Time   time.Time      `json:"t"`
	Name   string         `json:"event"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Sink receives trace events. Implementations must be safe for
// concurrent use.
type Sink interface {
	Event(e Event)
}

// WriterSink streams events as JSON lines to an io.Writer.
type WriterSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterSink wraps w as a JSONL trace sink.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Event writes one JSON line; encoding errors are dropped (tracing
// must never fail a solve).
func (s *WriterSink) Event(e Event) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Write(append(b, '\n'))
}

// Rec accumulates the statistics of one solve. The zero value is not
// usable; call New. A nil *Rec discards everything, so call sites need
// no guards.
type Rec struct {
	counters [numCounters]atomic.Int64

	mu     sync.Mutex
	stages map[string]time.Duration
	sink   Sink
}

// New returns an empty recorder.
func New() *Rec { return &Rec{stages: make(map[string]time.Duration)} }

// SetSink installs a structured trace sink (nil disables tracing).
func (r *Rec) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
}

// Add increments counter c by n.
func (r *Rec) Add(c Counter, n int64) {
	if r == nil || c < 0 || c >= numCounters {
		return
	}
	r.counters[c].Add(n)
}

// Get returns the current value of counter c (readable mid-solve).
func (r *Rec) Get(c Counter) int64 {
	if r == nil || c < 0 || c >= numCounters {
		return 0
	}
	return r.counters[c].Load()
}

// Emit sends a structured trace event to the sink, if one is set.
func (r *Rec) Emit(name string, fields map[string]any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	sink := r.sink
	r.mu.Unlock()
	if sink == nil {
		return
	}
	sink.Event(Event{Time: time.Now(), Name: name, Fields: fields})
}

// AddStage accumulates wall time into a named stage directly, for
// solver layers that time sub-stages (assemble/factor/pivot splits)
// with plain time.Since instead of the heavier Phase wrapper.
func (r *Rec) AddStage(name string, d time.Duration) { r.addStage(name, d) }

// addStage accumulates wall time into a named stage.
func (r *Rec) addStage(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.stages == nil {
		r.stages = make(map[string]time.Duration)
	}
	r.stages[name] += d
	r.mu.Unlock()
}

// Phase runs f as a named solver stage: its wall time accrues to the
// stage, a begin/end event pair goes to the trace sink, and the
// goroutine carries a pprof label ("mintc.stage" = name) so CPU
// profiles split by phase. A nil receiver still runs f, unlabeled.
func (r *Rec) Phase(ctx context.Context, name string, f func(context.Context) error) error {
	if r == nil {
		return f(ctx)
	}
	r.Emit("stage.begin", map[string]any{"stage": name})
	start := time.Now()
	var err error
	pprof.Do(ctx, pprof.Labels("mintc.stage", name), func(ctx context.Context) {
		err = f(ctx)
	})
	d := time.Since(start)
	r.addStage(name, d)
	fields := map[string]any{"stage": name, "ns": d.Nanoseconds()}
	if err != nil {
		fields["error"] = err.Error()
	}
	r.Emit("stage.end", fields)
	return err
}

// Snapshot returns a point-in-time copy of all statistics. Safe to
// call while the solve is still running (partial progress) or after
// cancellation.
func (r *Rec) Snapshot() Stats {
	if r == nil {
		return Stats{}
	}
	s := Stats{Counters: make(map[string]int64), StageNs: make(map[string]int64)}
	for c := Counter(0); c < numCounters; c++ {
		if v := r.counters[c].Load(); v != 0 {
			s.Counters[c.String()] = v
		}
	}
	r.mu.Lock()
	for name, d := range r.stages {
		s.StageNs[name] = d.Nanoseconds()
	}
	r.mu.Unlock()
	return s
}

// Stats is an immutable snapshot of a recorder, shaped for JSON
// reports (counter and per-stage nanosecond maps).
type Stats struct {
	Counters map[string]int64 `json:"counters,omitempty"`
	StageNs  map[string]int64 `json:"stage_ns,omitempty"`
}

// Counter returns the named counter (0 when absent).
func (s Stats) Counter(c Counter) int64 { return s.Counters[c.String()] }

// Stage returns the accumulated duration of a named stage.
func (s Stats) Stage(name string) time.Duration {
	return time.Duration(s.StageNs[name])
}

// String renders the snapshot on one line, keys sorted, e.g.
// "pivots=12 slide_iterations=2 | lp=1.2ms slide=34µs".
func (s Stats) String() string {
	var b strings.Builder
	for i, k := range sortedKeys(s.Counters) {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, s.Counters[k])
	}
	if len(s.StageNs) > 0 {
		if b.Len() > 0 {
			b.WriteString(" | ")
		}
		for i, k := range sortedKeys(s.StageNs) {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%s", k, time.Duration(s.StageNs[k]))
		}
	}
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ctxKey is the private context key for the recorder.
type ctxKey struct{}

// With returns a context carrying the recorder; solver layers retrieve
// it with From and report into it without signature changes.
func With(ctx context.Context, r *Rec) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// From returns the recorder carried by ctx, or nil (whose methods all
// no-op) when none is attached.
func From(ctx context.Context) *Rec {
	r, _ := ctx.Value(ctxKey{}).(*Rec)
	return r
}
