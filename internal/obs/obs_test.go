package obs

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersAndSnapshot(t *testing.T) {
	r := New()
	r.Add(Pivots, 3)
	r.Add(Pivots, 4)
	r.Add(SlideIterations, 2)
	if got := r.Get(Pivots); got != 7 {
		t.Fatalf("Pivots = %d, want 7", got)
	}
	s := r.Snapshot()
	if s.Counter(Pivots) != 7 || s.Counter(SlideIterations) != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Counter(Trials) != 0 {
		t.Fatalf("unset counter should read 0")
	}
	if !strings.Contains(s.String(), "pivots=7") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Rec
	r.Add(Pivots, 1)
	r.Emit("x", nil)
	r.SetSink(nil)
	if r.Get(Pivots) != 0 {
		t.Fatal("nil recorder should read 0")
	}
	ran := false
	err := r.Phase(context.Background(), "lp", func(context.Context) error {
		ran = true
		return nil
	})
	if err != nil || !ran {
		t.Fatal("nil recorder must still run the phase body")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.StageNs) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

func TestPhaseTimingAndError(t *testing.T) {
	r := New()
	wantErr := errors.New("boom")
	err := r.Phase(context.Background(), "lp", func(context.Context) error {
		time.Sleep(2 * time.Millisecond)
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if d := r.Snapshot().Stage("lp"); d < time.Millisecond {
		t.Fatalf("stage duration %v too small", d)
	}
}

func TestContextPlumbing(t *testing.T) {
	r := New()
	ctx := With(context.Background(), r)
	From(ctx).Add(Probes, 5)
	if r.Get(Probes) != 5 {
		t.Fatal("recorder not reachable through context")
	}
	if From(context.Background()) != nil {
		t.Fatal("From on a bare context must be nil")
	}
}

func TestWriterSinkEmitsJSONL(t *testing.T) {
	var buf strings.Builder
	mu := &syncWriter{w: &buf}
	r := New()
	r.SetSink(NewWriterSink(mu))
	r.Emit("probe", map[string]any{"tc": 110.0})
	r.Phase(context.Background(), "slide", func(context.Context) error { return nil })

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // probe + stage.begin + stage.end
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Name != "probe" || e.Fields["tc"] != 110.0 {
		t.Fatalf("event = %+v", e)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(Relaxations, 1)
				r.addStage("slide", time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Get(Relaxations); got != 8000 {
		t.Fatalf("Relaxations = %d, want 8000", got)
	}
	if r.Snapshot().Stage("slide") != 8000*time.Nanosecond {
		t.Fatalf("stage = %v", r.Snapshot().Stage("slide"))
	}
}

// syncWriter serializes writes from the sink goroutines.
type syncWriter struct {
	mu sync.Mutex
	w  *strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
