package mcr

import (
	"math"
	"testing"

	"mintc/internal/circuits"
	"mintc/internal/core"
)

func TestSolverMatchesSolveAcrossSweep(t *testing.T) {
	c := circuits.Example1(0)
	s, err := NewSolver(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0.0; d <= 150; d += 12.5 {
		s.SetDelay(3, d)
		got, err := s.Solve()
		if err != nil {
			t.Fatalf("Δ41=%g: %v", d, err)
		}
		want := circuits.Example1OptimalTc(d)
		if math.Abs(got.Tc-want) > 1e-6 {
			t.Errorf("Δ41=%g: solver Tc %g, want %g", d, got.Tc, want)
		}
	}
	// The circuit itself was never mutated.
	if c.Paths()[3].Delay != 0 {
		t.Errorf("solver mutated the circuit: %g", c.Paths()[3].Delay)
	}
}

func TestSolverRepeatedSolvesIndependent(t *testing.T) {
	c := circuits.GaAsMIPS()
	s, err := NewSolver(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Bump and restore a delay: the solve after restoring must match
	// the first exactly (no hidden state drift).
	s.SetDelay(0, 99)
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	s.SetDelay(0, c.Paths()[0].Delay)
	again, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(first.Tc-again.Tc) > 1e-12 {
		t.Errorf("state drift: %g vs %g", first.Tc, again.Tc)
	}
	if math.Abs(first.Tc-4.4) > 1e-9 {
		t.Errorf("GaAs Tc = %g", first.Tc)
	}
}

func TestSolverSetDelayPanics(t *testing.T) {
	c := circuits.Example1(80)
	s, err := NewSolver(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.SetDelay(99, 1)
}

func TestSolverRejectsInvalid(t *testing.T) {
	if _, err := NewSolver(core.NewCircuit(1), core.Options{}); err == nil {
		t.Fatal("invalid circuit compiled")
	}
}

func BenchmarkSolverVsFreshSolve(b *testing.B) {
	c := circuits.GaAsMIPS()
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Solve(c, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		s, err := NewSolver(c, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
