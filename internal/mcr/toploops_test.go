package mcr

import (
	"math"
	"testing"

	"mintc/internal/circuits"
	"mintc/internal/core"
)

func TestTopLoopsExample1(t *testing.T) {
	c := circuits.Example1(80)
	loops, err := TopLoops(c, core.Options{}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1 (the single ring)", len(loops))
	}
	top := loops[0]
	// Ring: 4 latch delays (40) + 20+20+60+80 = 220 over 2 crossings.
	if math.Abs(top.Delay-220) > 1e-9 || top.Crossings != 2 {
		t.Errorf("loop delay/crossings = %g/%d, want 220/2", top.Delay, top.Crossings)
	}
	if math.Abs(top.Ratio-110) > 1e-9 {
		t.Errorf("ratio = %g, want 110 (== Tc* here)", top.Ratio)
	}
	if len(top.Names) != 4 {
		t.Errorf("names = %v", top.Names)
	}
}

func TestTopLoopsAreLowerBounds(t *testing.T) {
	// Every loop ratio lower-bounds Tc*; at Δ41 = 0 the stage bound
	// (80) dominates the loop ratio (70), so the bound is strict.
	c := circuits.Example1(0)
	loops, err := TopLoops(c, core.Options{}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.MinTc(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loops[0].Ratio > r.Schedule.Tc+1e-9 {
		t.Errorf("loop ratio %g exceeds Tc* %g", loops[0].Ratio, r.Schedule.Tc)
	}
	if math.Abs(loops[0].Ratio-70) > 1e-9 {
		t.Errorf("ratio = %g, want 70", loops[0].Ratio)
	}
}

func TestTopLoopsGaAsIMD(t *testing.T) {
	c := circuits.GaAsMIPS()
	loops, err := TopLoops(c, core.Options{}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) == 0 {
		t.Fatal("no loops in GaAs model")
	}
	top := loops[0]
	if math.Abs(top.Ratio-4.4) > 1e-9 {
		t.Errorf("top loop ratio = %g, want 4.4 (the IMD loop)", top.Ratio)
	}
	foundIMD := false
	for _, n := range top.Names {
		if n == "IMDout" {
			foundIMD = true
		}
	}
	if !foundIMD {
		t.Errorf("top loop %v does not pass through IMDout", top.Names)
	}
	// Ranking: the second loop is no more critical than the first.
	if len(loops) > 1 && loops[1].Ratio > top.Ratio+1e-12 {
		t.Error("loops not sorted by ratio")
	}
}

func TestTopLoopsFFSetupFolded(t *testing.T) {
	// FF self-loop: CQ(1) + delay(10) + setup(2) = 13 over 1 crossing.
	c := core.NewCircuit(1)
	f := c.AddFF("F", 0, 2, 1)
	c.AddPath(f, f, 10)
	loops, err := TopLoops(c, core.Options{}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loops[0].Ratio-13) > 1e-9 {
		t.Errorf("FF loop ratio = %g, want 13", loops[0].Ratio)
	}
}

func TestTopLoopsCapAndValidation(t *testing.T) {
	if _, err := TopLoops(core.NewCircuit(1), core.Options{}, 3, 0); err == nil {
		t.Error("invalid circuit accepted")
	}
	c := circuits.GaAsMIPS()
	loops, err := TopLoops(c, core.Options{}, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) > 2 {
		t.Errorf("n cap ignored: %d", len(loops))
	}
}
