package mcr

import (
	"sort"

	"mintc/internal/core"
	"mintc/internal/graph"
)

// Loop is one structural loop of the circuit with its cycle-ratio
// bound on the cycle time.
type Loop struct {
	// Syncs lists the synchronizers around the loop in order.
	Syncs []int
	// Names are the display names of Syncs.
	Names []string
	// Delay is the accumulated fixed delay around the loop (ΔDQ + Δ
	// per arc, plus setup contributions on flip-flop captures).
	Delay float64
	// Crossings is the number of clock-cycle boundaries the loop
	// spans.
	Crossings int
	// Ratio is Delay / Crossings: the loop's lower bound on Tc.
	Ratio float64
}

// TopLoops enumerates the circuit's simple synchronizer loops and
// returns the n with the highest cycle-ratio bound, most critical
// first — the multi-loop generalization of the single critical cycle
// reported by Solve, and the quantified version of the paper's
// observation that criticality spreads over several segments. The
// enumeration is exponential in the worst case, so maxCycles caps the
// number of loops examined (0 means 10000); circuits of the paper's
// scale are far below the cap.
func TopLoops(c *core.Circuit, opts core.Options, n, maxCycles int) ([]Loop, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		n = 5
	}
	if maxCycles <= 0 {
		maxCycles = 10000
	}
	// Build the synchronizer graph with per-arc (delay, crossing)
	// attributes. We reuse graph.SimpleCycles by encoding the arc
	// attributes in parallel slices indexed by insertion order.
	g := graph.New(c.L())
	type arc struct {
		delay    float64
		crossing int
	}
	var arcs []arc
	for _, p := range c.Paths() {
		j, i := p.From, p.To
		w := c.Sync(j).DQ + p.Delay + opts.Skew +
			sigma(opts, c.Sync(j).Phase) + sigma(opts, c.Sync(i).Phase)
		if c.Sync(i).Kind == core.FlipFlop {
			// FF capture folds the setup into the arc (arrival must
			// precede the edge by the setup).
			w += c.Sync(i).Setup
		}
		cross := 0
		if c.Sync(j).Phase >= c.Sync(i).Phase {
			cross = 1
		}
		// graph edge weight carries the arc index so cycles can be
		// mapped back to attributes exactly even with parallel edges.
		g.AddEdge(j, i, float64(len(arcs)))
		arcs = append(arcs, arc{delay: w, crossing: cross})
	}

	var loops []Loop
	for _, cyc := range g.SimpleCycles(maxCycles) {
		var loop Loop
		for _, e := range cyc.Edges {
			a := arcs[int(e.Weight)]
			loop.Delay += a.delay
			loop.Crossings += a.crossing
		}
		loop.Syncs = append(loop.Syncs, cyc.Nodes...)
		for _, s := range cyc.Nodes {
			loop.Names = append(loop.Names, c.SyncName(s))
		}
		if loop.Crossings > 0 {
			loop.Ratio = loop.Delay / float64(loop.Crossings)
		} else {
			// A loop with no boundary crossing constrains Tc only if
			// its delay is positive — and then no Tc works. Rank it
			// above everything.
			loop.Ratio = loop.Delay * 1e18
		}
		loops = append(loops, loop)
	}
	sort.Slice(loops, func(a, b int) bool {
		if loops[a].Ratio != loops[b].Ratio {
			return loops[a].Ratio > loops[b].Ratio
		}
		return len(loops[a].Syncs) < len(loops[b].Syncs)
	})
	if len(loops) > n {
		loops = loops[:n]
	}
	return loops, nil
}
