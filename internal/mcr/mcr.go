// Package mcr solves the SMO optimal-cycle-time problem by a maximum
// cycle ratio computation instead of linear programming.
//
// The paper's conclusion observes that the constraint matrix of P2 has
// only 0/±1 entries and anticipates algorithms "potentially more
// efficient than the simplex algorithm". This package realizes that
// idea: after the change of variables
//
//	e_p = s_p + T_p   (end of phase p's active interval)
//	u_i = s_{p_i} + D_i  (departure of synchronizer i in cycle time)
//
// every constraint of P2 — clock constraints C1–C4 and latch
// constraints L1, L2R, L3 — becomes a difference constraint
// x_a − x_b ≥ A + B·Tc with B ∈ {0, −1}. For a fixed Tc the system is
// feasible iff the constraint graph has no positive-weight cycle
// (Bellman–Ford), and the minimum feasible Tc is the maximum ratio
// A_cycle / (−B_cycle) over cycles with B_cycle < 0. Cycles with
// B_cycle = 0 and A_cycle > 0 witness structural infeasibility at any
// cycle time.
//
// Two engines are provided: Solve (Lawler-style witness-cycle jumping,
// exact up to floating point, usually a handful of Bellman–Ford runs)
// and SolveBinary (plain bisection, used for cross-checking).
package mcr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"mintc/internal/core"
	"mintc/internal/obs"
)

// node ids inside the constraint graph.
type builder struct {
	c     *core.Circuit
	opts  core.Options
	n     int
	edges []edge
	// node index helpers
	z     int
	s     []int
	e     []int
	u     []int
	names []string
	// pathEdge[p] is the index of the constraint edge carrying path
	// p's worst-case delay (for incremental delay updates).
	pathEdge []int
	// holdEdge[p] is the index of path p's conservative hold edge, or
	// -1 (no DesignForHold, Hold <= 0, or path excluded). Solver's
	// SetDelay repairs it alongside pathEdge, since the hold constant
	// carries the MinDelay clamp min(MinDelay, delay).
	holdEdge []int

	// Worklist-probe scratch, allocated on first probe and reused
	// across probes and across Solver solves on the same builder. The
	// CSR out-adjacency stays valid under SetDelay (edge endpoints
	// never change, only the affine constants).
	outStart []int32 // CSR row index into outEdge, len n+1
	outEdge  []int32 // edge indices grouped by source node
	dist     []float64
	pred     []int32  // predecessor edge index, or -1
	inq      []uint64 // worklist-membership bitset, one bit per node
	queue    []int32  // current-round worklist
	queue2   []int32  // next-round worklist (swapped each round)
	// Epoch-stamped visit marks shared by bestWitness (walk ids) and
	// probeDense's cycle extraction (path positions): a node is
	// "visited" iff wgen[v] == wepoch, so clearing between calls is a
	// counter bump instead of an O(n) wipe (with an O(n) reset only at
	// the uint32 wrap).
	wepoch uint32
	wgen   []uint32
	wmark  []int32 // bestWitness: id of the walk that visited the node
	wpos   []int32 // probeDense: position of the node along the cycle walk
	// Dense-probe scratch (the reference fallback), kept separate from
	// dist/pred so a fallback never corrupts the warm-start potentials.
	ddist []float64
	dpred []int32
	// distValid reports that dist holds finite potentials from a
	// previous probe, usable as a warm start (any finite start is
	// sound for feasibility: solutions of a difference-constraint
	// system are shift-invariant, so one dominating the start exists
	// whenever the system is feasible).
	distValid bool
	// seededPot marks that dist was installed from externally persisted
	// potentials (Solver.SeedPotentials) rather than left by a probe on
	// this builder; the first warm probe consuming it reports a
	// WarmPotentialHits tick.
	seededPot bool
	// witIdx holds the edge indices of the most recent witness cycle
	// any probe on this builder produced. Edge endpoints never change
	// under SetDelay — only the affine constants move — so the stored
	// cycle remains a real cycle of the graph, and its ratio recomputed
	// against the current constants (Solver.WitnessBound) is always a
	// sound cycle-time lower bound, however stale the constants that
	// found it.
	witIdx []int32
	// Chunked-probe configuration and scratch (parallel.go). Zero
	// values select the defaults; tests override the cutoff and chunk
	// size to force tiny graphs through the chunked engine.
	probeWorkers  int // relaxation worker bound (0 = GOMAXPROCS)
	chunkCutoff   int // node count at which probes go chunked (0 = default)
	chunkSizeOver int // sources per chunk (0 = default)
	lanes         []*probeLane
	chunkRefs     []chunkRef
}

// edge encodes the difference constraint x[to] >= x[from] + a + b*Tc.
type edge struct {
	from, to int
	a, b     float64
}

// Result is the outcome of a min-cycle-ratio solve.
type Result struct {
	// Tc is the minimum feasible cycle time.
	Tc float64
	// Schedule is a concrete optimal clock schedule (the least
	// schedule in the difference-constraint lattice).
	Schedule *core.Schedule
	// D holds the departure times extracted with the schedule.
	D []float64
	// CriticalLoop names the constraint-graph nodes of the cycle whose
	// ratio determines Tc (empty when Tc is forced to 0 by no
	// ratio-bearing cycle).
	CriticalLoop []string
	// CriticalArcs is the same cycle as individual difference
	// constraints (x[To] >= x[From] + A + B·Tc), in walk order — the
	// machine-checkable optimality witness that internal/verify
	// re-walks arc by arc: the cycle must close, accumulate B < 0, and
	// have A/(−B) equal to Tc.
	CriticalArcs []CycleArc
	// CriticalRatio is A/(−B) of that cycle (== Tc when it binds).
	CriticalRatio float64
	// Probes counts Bellman–Ford feasibility probes.
	Probes int
	// Stats is the observability snapshot of the solve (probe counter,
	// "build"/"search" stage durations). Populated by SolveCtx.
	Stats obs.Stats

	// criticalA/criticalB hold the witness cycle's accumulated
	// constant and Tc coefficient (for Explain).
	criticalA, criticalB float64
}

// ErrInfeasible mirrors core.ErrInfeasible for structurally impossible
// constraint systems (a cycle needs positive time but crosses no cycle
// boundary).
var ErrInfeasible = errors.New("mcr: timing constraints are infeasible at any cycle time")

// CycleArc is one difference constraint of a witness cycle:
// x[To] >= x[From] + A + B·Tc, with From/To naming constraint-graph
// nodes (phase starts/ends, latch departures).
type CycleArc struct {
	From, To string
	A, B     float64
}

// InfeasibleError is the typed form of ErrInfeasible carrying the
// witness cycle: a closed loop of constraints that accumulates
// positive fixed delay (ΣA > 0) while crossing no net cycle boundary
// (ΣB >= 0), so no Tc can satisfy it. errors.Is(err, ErrInfeasible)
// matches it.
type InfeasibleError struct {
	Arcs []CycleArc
}

func (e *InfeasibleError) Error() string { return ErrInfeasible.Error() }

func (e *InfeasibleError) Unwrap() error { return ErrInfeasible }

const eps = 1e-9

// newBuilder assembles the difference-constraint graph for circuit c.
func newBuilder(c *core.Circuit, opts core.Options) *builder {
	return newBuilderSub(c, opts, nil, nil)
}

// newBuilderSub is the generalized graph assembly shared by the full
// solver and the decomposed per-component solvers: path delays are
// read through an optional overlay (nil = the circuit's own delays),
// and an optional membership mask restricts the system to a subset of
// synchronizers — only member syncs get departure nodes and rows, and
// only paths with both endpoints in the subset get constraint edges
// (clock rows are always emitted; they are shared by every subsystem).
// With inComp == nil and ov == nil the graph is bit-identical to the
// original monolithic builder. pathEdge[p] is -1 for excluded paths.
func newBuilderSub(c *core.Circuit, opts core.Options, ov *core.DelayOverlay, inComp []bool) *builder {
	k, l := c.K(), c.L()
	b := &builder{c: c, opts: opts}
	alloc := func(name string) int {
		id := b.n
		b.n++
		b.names = append(b.names, name)
		return id
	}
	member := func(i int) bool { return inComp == nil || inComp[i] }
	delayOf := func(pidx int) (d, min float64) {
		if ov != nil {
			return ov.Delay(pidx), ov.MinDelay(pidx)
		}
		p := c.Paths()[pidx]
		return p.Delay, p.MinDelay
	}
	b.z = alloc("origin")
	b.s = make([]int, k)
	b.e = make([]int, k)
	for p := 0; p < k; p++ {
		b.s[p] = alloc("s." + c.PhaseName(p))
		b.e[p] = alloc("e." + c.PhaseName(p))
	}
	b.u = make([]int, l)
	for i := 0; i < l; i++ {
		if member(i) {
			b.u[i] = alloc("u." + c.SyncName(i))
		} else {
			b.u[i] = -1
		}
	}
	add := func(from, to int, a, bTc float64) {
		b.edges = append(b.edges, edge{from: from, to: to, a: a, b: bTc})
	}

	for p := 0; p < k; p++ {
		// C4/C1: s_p >= 0; s_p <= Tc; T_p >= 0 (e >= s); T_p <= Tc
		// (s >= e − Tc).
		add(b.z, b.s[p], 0, 0)
		add(b.s[p], b.z, 0, -1) // z >= s_p − Tc
		add(b.s[p], b.e[p], math.Max(0, opts.MinPhaseWidth), 0)
		add(b.e[p], b.s[p], 0, -1)
	}
	// C2 ordering.
	for p := 0; p+1 < k; p++ {
		add(b.s[p], b.s[p+1], 0, 0)
	}
	// C3 nonoverlap per K pair: s_i >= e_j − C_ji·Tc (+ separation).
	km := c.KMatrix()
	cm := c.CMatrix()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if km[i][j] == 0 {
				continue
			}
			add(b.e[j], b.s[i], opts.MinSeparation+sigma(opts, i)+sigma(opts, j), -float64(cm[j][i]))
		}
	}
	for i, sy := range c.Syncs() {
		if !member(i) {
			continue
		}
		p := sy.Phase
		// L3: u_i >= s_p.
		add(b.s[p], b.u[i], 0, 0)
		switch sy.Kind {
		case core.Latch:
			// L1: e_p >= u_i + ΔDC (+skew margins).
			add(b.u[i], b.e[p], sy.Setup+opts.Skew+sigma(opts, p), 0)
		case core.FlipFlop:
			// D_i = 0: u_i == s_p (the >= half is L3 above).
			add(b.u[i], b.s[p], 0, 0)
		}
	}
	b.pathEdge = make([]int, len(c.Paths()))
	b.holdEdge = make([]int, len(c.Paths()))
	for pidx := range b.holdEdge {
		b.holdEdge[pidx] = -1
	}
	for pidx, path := range c.Paths() {
		j, i := path.From, path.To
		if !member(j) || !member(i) {
			b.pathEdge[pidx] = -1
			continue
		}
		pj, pi := c.Sync(j).Phase, c.Sync(i).Phase
		cji := 0.0
		if pj >= pi {
			cji = 1
		}
		// Same margin-adjusted transfer weight as the LP's L2R rows and
		// the analysis fixpoint, with the delay read through the overlay
		// (DelayOverlay.ArcWeight sums the same five terms in the same
		// order as core.ArcWeight, so the no-edit case is bit-identical).
		_, minDelay := delayOf(pidx)
		var w float64
		if ov != nil {
			w = ov.ArcWeight(opts, pidx)
		} else {
			w = core.ArcWeight(c, opts, pidx)
		}
		b.pathEdge[pidx] = len(b.edges)
		switch c.Sync(i).Kind {
		case core.Latch:
			// L2R: u_i >= u_j + w − C·Tc.
			add(b.u[j], b.u[i], w, -cji)
		case core.FlipFlop:
			// FF setup: s_{p_i} >= u_j + w + ΔDC_i − C·Tc.
			add(b.u[j], b.s[pi], w+c.Sync(i).Setup, -cji)
		}
		// Conservative hold rows, mirroring core.BuildLP exactly:
		// s_pj − [e_pi (latch) | s_pi (FF)] >= K − (1−C)·Tc.
		if opts.DesignForHold && c.Sync(i).Hold > 0 {
			kconst := c.Sync(i).Hold - c.Sync(j).DQ - minDelay +
				opts.Skew + sigma(opts, pj) + sigma(opts, pi)
			from := b.e[pi]
			if c.Sync(i).Kind == core.FlipFlop {
				from = b.s[pi]
			}
			b.holdEdge[pidx] = len(b.edges)
			add(from, b.s[pj], kconst, -(1 - cji))
		}
	}
	return b
}

// sigma mirrors core's per-phase skew accessor.
func sigma(o core.Options, p int) float64 {
	if p < 0 || p >= len(o.PhaseSkew) {
		return 0
	}
	return o.PhaseSkew[p]
}

// ensureScratch lazily builds the CSR out-adjacency and the reusable
// probe buffers.
func (b *builder) ensureScratch() {
	if b.outStart != nil {
		return
	}
	n, m := b.n, len(b.edges)
	b.outStart = make([]int32, n+1)
	for _, e := range b.edges {
		b.outStart[e.from+1]++
	}
	for i := 0; i < n; i++ {
		b.outStart[i+1] += b.outStart[i]
	}
	b.outEdge = make([]int32, m)
	fill := make([]int32, n)
	copy(fill, b.outStart[:n])
	for ei, e := range b.edges {
		b.outEdge[fill[e.from]] = int32(ei)
		fill[e.from]++
	}
	b.dist = make([]float64, n)
	b.pred = make([]int32, n)
	b.inq = make([]uint64, (n+63)/64)
	b.queue = make([]int32, 0, n)
	b.queue2 = make([]int32, 0, n)
	b.wgen = make([]uint32, n)
	b.wmark = make([]int32, n)
	b.wpos = make([]int32, n)
	b.ddist = make([]float64, n)
	b.dpred = make([]int32, n)
}

// inQueue / setInQueue / clearInQueue are the worklist-membership
// bitset accessors (one cache line covers 512 nodes; the per-probe
// reset is an O(n/64) word wipe).
func (b *builder) inQueue(v int) bool   { return b.inq[v>>6]&(1<<uint(v&63)) != 0 }
func (b *builder) setInQueue(v int)     { b.inq[v>>6] |= 1 << uint(v&63) }
func (b *builder) clearInQueue(v int32) { b.inq[v>>6] &^= 1 << uint(v&63) }

// bumpEpoch starts a fresh visit epoch for the wgen stamps.
func (b *builder) bumpEpoch() uint32 {
	if b.wepoch == math.MaxUint32 {
		for i := range b.wgen {
			b.wgen[i] = 0
		}
		b.wepoch = 0
	}
	b.wepoch++
	return b.wepoch
}

// probe decides feasibility of the difference-constraint system at
// cycle time tc by worklist (SPFA-style) longest-path relaxation with
// edge weights a + b·tc. It returns the node potentials when feasible,
// or the edges of a positive-weight cycle when not. The returned dist
// aliases builder scratch and is overwritten by the next probe.
//
// With warm == true the relaxation starts from the potentials left by
// the previous probe instead of the -Inf origin point. That is sound
// for the feasibility verdict and the witness cycle (see distValid),
// and across Lawler jumps — where tc only increases, shrinking every
// edge weight — most potentials are already consistent, so warm probes
// touch a small fraction of the graph. The potentials of a warm
// feasible probe are NOT the canonical least solution, so callers that
// extract a schedule must finish with a cold probe.
//
// Past the chunked cutoff (parallel.go) the round drain runs on the
// fixed-chunk engine — identical results for every worker count by
// construction — and below it on the serial per-node worklist.
//
// The context is polled every round / every 1024 pops and during cycle
// extraction. Edge relaxations and rounds are reported to the obs
// recorder carried by ctx (ProbeRelaxations, ProbeRounds).
func (b *builder) probe(ctx context.Context, tc float64, warm bool) (dist []float64, witness []edge, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	b.ensureScratch()
	n := b.n
	for i := 0; i < n; i++ {
		b.pred[i] = -1
	}
	for i := range b.inq {
		b.inq[i] = 0
	}
	if !warm || !b.distValid {
		for i := range b.dist {
			b.dist[i] = math.Inf(-1)
		}
		b.dist[b.z] = 0
		b.seededPot = false
	}
	rec := obs.From(ctx)
	if warm && b.distValid && b.seededPot {
		rec.Add(obs.WarmPotentialHits, 1)
		b.seededPot = false
	}
	b.distValid = true
	var relaxations int64
	defer func() { rec.Add(obs.ProbeRelaxations, relaxations) }()

	cur := b.queue[:0]
	// Seed sweep (round 1): one dense pass in edge-insertion order. The
	// builder emits edges roughly topologically (clock rows, then
	// per-sync rows, then path rows in path order), so this pass alone
	// nearly converges on feed-forward structures — the worklist then
	// drains only the genuinely iterative residual (loops, warm-start
	// slack).
	for ei := range b.edges {
		e := &b.edges[ei]
		if math.IsInf(b.dist[e.from], -1) {
			continue
		}
		if d := b.dist[e.from] + e.a + e.b*tc; d > b.dist[e.to]+eps {
			b.dist[e.to] = d
			b.pred[e.to] = int32(ei)
			relaxations++
			if !b.inQueue(e.to) {
				b.setInQueue(e.to)
				cur = append(cur, int32(e.to))
			}
		}
	}
	b.queue = cur
	var witIdx []int32
	if n >= b.chunkedCutoffVal() {
		witIdx, err = b.drainChunked(ctx, tc, &relaxations, rec)
	} else {
		witIdx, err = b.drainSerial(ctx, tc, &relaxations, rec)
	}
	if err != nil {
		if errors.Is(err, errDenseFallback) {
			// Saturated yet nothing certifies (eps-tolerance corner):
			// defer to the dense reference probe.
			return b.probeDense(ctx, tc)
		}
		return nil, nil, err
	}
	if witIdx != nil {
		b.witIdx = append(b.witIdx[:0], witIdx...)
		return nil, b.edgesOf(witIdx), nil
	}
	return b.dist, nil, nil
}

// errDenseFallback is the drain engines' private signal that the
// worklist saturated past round n+1 without a certifiable witness;
// probe answers it with the dense reference probe.
var errDenseFallback = errors.New("mcr: worklist saturated without witness")

// scanStartRound is the first round at which a drain scans the pred
// graph for an already-certified positive cycle, doubling after each
// miss so scans stay amortized against relaxation work. The policy is
// shared by cold and warm probes: on giant strongly connected graphs
// the witness cycle is complete in the pred graph within a few rounds
// of the seed sweep, and waiting for the round-n+1 saturation bound —
// the policy before the scan existed — is what made a single cold
// infeasible probe cost n dense rounds (the entire ring-2x100k solve
// was one such probe). An early witness may be weaker than the
// saturation one — worst case a few extra Lawler jumps, each paid with
// a cheap warm probe; each O(n) scan is amortized by the doubling.
const scanStartRound = 16

// drainSerial is the per-node worklist drain used below the chunked
// cutoff: each swap of cur/next is one Bellman–Ford pass restricted to
// the nodes whose potential changed last round. Without a positive
// cycle every potential equals its best-walk value (≤ n−1 edges)
// within n rounds — the +1 absorbs the warm start, which acts as a
// virtual source edge into every node — so a worklist still active
// past round n+1 certifies a positive cycle even if no scan fired.
// Returns the witness cycle's edge indices, nil when the worklist
// drained (feasible), or errDenseFallback.
func (b *builder) drainSerial(ctx context.Context, tc float64, relaxations *int64, rec *obs.Rec) ([]int32, error) {
	n := b.n
	cur, next := b.queue, b.queue2[:0]
	defer func() { b.queue, b.queue2 = cur[:0], next[:0] }()
	checkRound := scanStartRound
	pops := 0
	rounds := int64(0)
	defer func() { rec.Add(obs.ProbeRounds, rounds) }()
	for ; len(cur) > 0; rounds++ {
		if int(rounds)+1 > checkRound {
			cyc, cerr := b.bestWitness(ctx, tc)
			if cerr != nil {
				return nil, cerr
			}
			if cyc != nil {
				return cyc, nil
			}
			if int(rounds)+1 > n+1 {
				return nil, errDenseFallback
			}
			if checkRound *= 2; checkRound > n+1 {
				checkRound = n + 1
			}
		}
		if len(cur)*4 >= n {
			// Dense round: most of the graph is active, so one
			// contiguous sweep of the edge array beats per-node CSR
			// chasing and queue bookkeeping.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for _, u := range cur {
				b.clearInQueue(u)
			}
			for ei := range b.edges {
				e := &b.edges[ei]
				if math.IsInf(b.dist[e.from], -1) {
					continue
				}
				if d := b.dist[e.from] + e.a + e.b*tc; d > b.dist[e.to]+eps {
					b.dist[e.to] = d
					b.pred[e.to] = int32(ei)
					*relaxations++
					if !b.inQueue(e.to) {
						b.setInQueue(e.to)
						next = append(next, int32(e.to))
					}
				}
			}
		} else {
			for _, u := range cur {
				b.clearInQueue(u)
				if pops++; pops&1023 == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				du := b.dist[u]
				for a := b.outStart[u]; a < b.outStart[u+1]; a++ {
					ei := b.outEdge[a]
					e := &b.edges[ei]
					if d := du + e.a + e.b*tc; d > b.dist[e.to]+eps {
						b.dist[e.to] = d
						b.pred[e.to] = ei
						*relaxations++
						if !b.inQueue(e.to) {
							b.setInQueue(e.to)
							next = append(next, int32(e.to))
						}
					}
				}
			}
		}
		cur, next = next, cur[:0]
	}
	return nil, nil
}

// edgesOf materializes witness edge indices as edge values (the form
// solveFrom accumulates and setWitness renders).
func (b *builder) edgesOf(idx []int32) []edge {
	out := make([]edge, len(idx))
	for i, ei := range idx {
		out[i] = b.edges[ei]
	}
	return out
}

// bestWitness scans the whole predecessor graph for cycles and returns
// the edge indices of the most binding one that certifies as strictly
// positive at tc: a structural cycle (no Tc coefficient — infeasible
// at every cycle time) if present, otherwise the maximum-ratio cycle.
// A drain would otherwise fire on whichever cycle happens to be
// noticed first — usually a short one, not the strongest — and a weak
// witness would cost Lawler extra jumps; since each node has at most
// one predecessor edge, the pred graph is functional and this full
// scan is O(n). Returns nil when no cycle certifies (the caller falls
// back to the dense probe).
func (b *builder) bestWitness(ctx context.Context, tc float64) ([]int32, error) {
	ep := b.bumpEpoch()
	gen, mark := b.wgen, b.wmark
	var best []int32
	bestScore := math.Inf(-1)
	for s := 0; s < b.n; s++ {
		if gen[s] == ep {
			continue
		}
		if s&255 == 255 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Follow pred until the walk dies, merges into an earlier walk,
		// or closes on itself (a fresh cycle).
		v := s
		for v >= 0 && gen[v] != ep {
			gen[v] = ep
			mark[v] = int32(s)
			if ei := b.pred[v]; ei < 0 {
				v = -1
			} else {
				v = b.edges[ei].from
			}
		}
		if v < 0 || mark[v] != int32(s) {
			continue
		}
		var cyc []int32
		var sumA, sumB float64
		for cur := v; ; {
			ei := b.pred[cur]
			e := b.edges[ei]
			cyc = append(cyc, ei)
			sumA += e.a
			sumB += e.b
			if cur = e.from; cur == v {
				break
			}
		}
		if sumA+sumB*tc <= eps {
			continue // not certifiably positive at tc
		}
		score := math.Inf(1) // structural: binds at every cycle time
		if sumB < -eps {
			score = sumA / -sumB
		}
		if score > bestScore {
			bestScore, best = score, cyc
		}
	}
	return best, nil
}

// probeDense is the reference Bellman–Ford probe: n−1 full relaxation
// passes from the origin. It is retained as the authority the worklist
// probe falls back to when cycle certification fails, and as the
// oracle for the worklist-vs-dense property tests. The context is
// polled once per pass and during cycle extraction.
func (b *builder) probeDense(ctx context.Context, tc float64) (dist []float64, witness []edge, err error) {
	b.ensureScratch()
	dist = b.ddist // separate from b.dist: a fallback must not clobber warm potentials
	pred := b.dpred
	for i := range dist {
		dist[i] = math.Inf(-1)
		pred[i] = -1
	}
	dist[b.z] = 0
	relax := func() int {
		changed := -1
		for ei, e := range b.edges {
			if math.IsInf(dist[e.from], -1) {
				continue
			}
			w := e.a + e.b*tc
			if d := dist[e.from] + w; d > dist[e.to]+eps {
				dist[e.to] = d
				pred[e.to] = int32(ei)
				changed = e.to
			}
		}
		return changed
	}
	for i := 0; i < b.n-1; i++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if relax() == -1 {
			return dist, nil, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	v := relax()
	if v == -1 {
		return dist, nil, nil
	}
	// Walk back n steps to land on the cycle, then extract it.
	for i := 0; i < b.n; i++ {
		if i&1023 == 1023 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		v = b.edges[pred[v]].from
	}
	ep := b.bumpEpoch()
	gen, pos := b.wgen, b.wpos
	var path []int32
	cur := v
	for {
		if len(path)&1023 == 1023 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		if gen[cur] == ep {
			// path[pos[cur]:] runs backwards along the cycle.
			cyc := path[pos[cur]:]
			b.witIdx = append(b.witIdx[:0], cyc...)
			return nil, b.edgesOf(cyc), nil
		}
		gen[cur] = ep
		pos[cur] = int32(len(path))
		ei := pred[cur]
		if ei < 0 {
			// Shouldn't happen: cycle nodes always have predecessors.
			return nil, b.edgesOf(path), nil
		}
		path = append(path, ei)
		cur = b.edges[ei].from
	}
}

// Solve computes the optimal cycle time by Lawler-style witness
// jumping: start at a lower bound, and while the system is infeasible,
// jump to the ratio of the witness cycle. Each jump strictly increases
// the candidate through the finite set of simple-cycle ratios, so the
// loop terminates with the exact maximum cycle ratio.
func Solve(c *core.Circuit, opts core.Options) (*Result, error) {
	return SolveCtx(context.Background(), c, opts)
}

// SolveCtx is Solve with cancellation and observability: the context is
// honored inside every Bellman–Ford pass and the witness-jumping loop,
// and probe counts plus "build"/"search" stage timings are reported
// into the obs recorder carried by the context (one is created when
// absent, so Result.Stats is always populated).
func SolveCtx(ctx context.Context, c *core.Circuit, opts core.Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if !opts.Objective.IsMinTc() {
		// The cycle-ratio formulation has no notion of alternate cost
		// vectors; the supervisor routes schedule objectives to the LP.
		return nil, fmt.Errorf("mcr: objective %s is not supported (min-Tc only)", opts.Objective)
	}
	rec := obs.From(ctx)
	if rec == nil {
		rec = obs.New()
		ctx = obs.With(ctx, rec)
	}
	var b *builder
	if err := rec.Phase(ctx, "build", func(context.Context) error {
		b = newBuilder(c, opts)
		return nil
	}); err != nil {
		return nil, err
	}
	var res *Result
	err := rec.Phase(ctx, "search", func(ctx context.Context) error {
		var serr error
		res, serr = solveWith(ctx, b, opts)
		return serr
	})
	if err != nil {
		return nil, err
	}
	res.Stats = rec.Snapshot()
	return res, nil
}

// solveWith runs the witness-jumping loop on an already-built
// constraint graph (shared by SolveCtx and Solver.Solve).
func solveWith(ctx context.Context, b *builder, opts core.Options) (*Result, error) {
	return solveFrom(ctx, b, opts, 0, true, false)
}

// solveFrom is the witness-jumping loop starting from a caller-supplied
// cycle-time lower bound. Any sound lower bound is admissible (the
// decomposed solver passes the max over per-component optima): if the
// first probe at the bound is feasible, the bound is the optimum —
// feasible + lower bound = optimal — and otherwise the Lawler jumps
// proceed exactly as from zero, converging to the same maximum cycle
// ratio. With extract == false the cold extraction re-probe is skipped
// and the result carries Tc and the witness cycle but no schedule or
// departures — the mode sweeps use, since they report Tc only. With
// firstWarm == true even the first probe reuses the potentials left by
// the previous solve on the same builder; any finite potentials are
// admissible starting points for the Bellman–Ford feasibility probe
// (shift invariance), so this changes cost, never answers.
func solveFrom(ctx context.Context, b *builder, opts core.Options, lower float64, extract, firstWarm bool) (*Result, error) {
	rec := obs.From(ctx)
	res := &Result{}
	tc := lower
	if opts.FixedTc > tc {
		tc = opts.FixedTc
	}
	var lastWitness []edge
	for iter := 0; ; iter++ {
		if iter > len(b.edges)*b.n+64 {
			return nil, fmt.Errorf("mcr: witness iteration failed to converge (tc=%g)", tc)
		}
		res.Probes++
		rec.Add(obs.Probes, 1)
		// Warm-start every probe after the first: each Lawler jump only
		// raises tc, which shrinks every edge weight, so the previous
		// potentials already satisfy most constraints and the warm probe
		// touches a small residual of the graph. The price is one cold
		// extraction re-probe at the final (feasible) tc — roughly what
		// a single cold probe would have cost anyway, amortized over
		// every intermediate probe turned near-free.
		warm := iter > 0 || firstWarm
		dist, witness, err := b.probe(ctx, tc, warm)
		if err != nil {
			return nil, err
		}
		if witness == nil {
			if !extract {
				res.Tc = tc
				b.setWitness(res, lastWitness)
			} else {
				if warm {
					// Warm potentials certify feasibility but are not the
					// canonical least solution; re-probe cold so the
					// extracted schedule is the least one in the lattice.
					res.Probes++
					rec.Add(obs.Probes, 1)
					dist, witness, err = b.probe(ctx, tc, false)
					if err != nil {
						return nil, err
					}
					if witness != nil {
						return nil, fmt.Errorf("mcr: cold re-probe found a witness at feasible tc=%g", tc)
					}
				}
				b.extract(res, tc, dist, lastWitness)
			}
			if opts.FixedTc > 0 && tc > opts.FixedTc+eps {
				return nil, fmt.Errorf("mcr: requested Tc %g below minimum %g", opts.FixedTc, tc)
			}
			return res, nil
		}
		var sumA, sumB float64
		for _, e := range witness {
			sumA += e.a
			sumB += e.b
		}
		if sumB >= -eps {
			// Cycle needs positive slack but crosses no boundary.
			return nil, &InfeasibleError{Arcs: b.cycleArcs(witness)}
		}
		ratio := sumA / (-sumB)
		if ratio <= tc+eps {
			// Numerical guard: force progress.
			ratio = tc + eps*10
		}
		tc = ratio
		lastWitness = witness
	}
}

// SolveBinary computes the optimal cycle time by bisection to the given
// absolute tolerance (used as an independent cross-check of Solve).
func SolveBinary(c *core.Circuit, opts core.Options, tol float64) (*Result, error) {
	return SolveBinaryCtx(context.Background(), c, opts, tol)
}

// SolveBinaryCtx is SolveBinary with cancellation: the context is
// polled inside every Bellman–Ford probe and between bisection steps.
func SolveBinaryCtx(ctx context.Context, c *core.Circuit, opts core.Options, tol float64) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if tol <= 0 {
		tol = 1e-7
	}
	rec := obs.From(ctx)
	b := newBuilder(c, opts)
	res := &Result{}
	// Bisection moves tc in both directions, so every probe runs cold
	// (warm starts are only sound as feasibility oracles; the endpoint
	// probes below also feed extraction, which needs least potentials).
	probe := func(tc float64) ([]float64, []edge, error) {
		res.Probes++
		rec.Add(obs.Probes, 1)
		return b.probe(ctx, tc, false)
	}
	// Upper bound: any Tc beyond the sum of all positive constants is
	// feasible unless the system is structurally infeasible.
	hi := 1.0
	for _, e := range b.edges {
		if e.a > 0 {
			hi += e.a
		}
	}
	if _, witness, err := probe(hi); err != nil {
		return nil, err
	} else if witness != nil {
		return nil, ErrInfeasible
	}
	if dist, witness, err := probe(0); err != nil {
		return nil, err
	} else if witness == nil {
		b.extract(res, 0, dist, nil)
		return res, nil
	}
	lo := 0.0
	for hi-lo > tol {
		mid := (lo + hi) / 2
		_, witness, err := probe(mid)
		if err != nil {
			return nil, err
		}
		if witness == nil {
			hi = mid
		} else {
			lo = mid
		}
	}
	dist, witness, err := probe(hi)
	if err != nil {
		return nil, err
	}
	if witness != nil {
		return nil, fmt.Errorf("mcr: bisection landed on infeasible point")
	}
	b.extract(res, hi, dist, nil)
	return res, nil
}

// extract converts origin-based potentials into a Schedule and
// departure vector.
func (b *builder) extract(res *Result, tc float64, dist []float64, witness []edge) {
	c := b.c
	res.Tc = tc
	sched := core.NewSchedule(c.K())
	sched.Tc = tc
	for p := 0; p < c.K(); p++ {
		sched.S[p] = dist[b.s[p]]
		sched.T[p] = dist[b.e[p]] - dist[b.s[p]]
	}
	res.Schedule = sched
	res.D = make([]float64, c.L())
	for i := 0; i < c.L(); i++ {
		if b.u[i] < 0 {
			continue // excluded from the subsystem; departure undefined
		}
		res.D[i] = dist[b.u[i]] - dist[b.s[c.Sync(i).Phase]]
	}
	b.setWitness(res, witness)
}

// setWitness fills the result's critical-cycle fields from a witness
// (no-op when nil).
func (b *builder) setWitness(res *Result, witness []edge) {
	if witness == nil {
		return
	}
	var sumA, sumB float64
	for _, e := range witness {
		res.CriticalLoop = append(res.CriticalLoop, b.names[e.to])
		sumA += e.a
		sumB += e.b
	}
	if sumB < -eps {
		res.CriticalRatio = sumA / (-sumB)
	}
	res.criticalA = sumA
	res.criticalB = sumB
	res.CriticalArcs = b.cycleArcs(witness)
}

// cycleArcs renders a witness cycle into exported arcs with node
// names, the form certificate checkers consume.
func (b *builder) cycleArcs(witness []edge) []CycleArc {
	arcs := make([]CycleArc, 0, len(witness))
	for _, e := range witness {
		arcs = append(arcs, CycleArc{From: b.names[e.from], To: b.names[e.to], A: e.a, B: e.b})
	}
	return arcs
}

// Explain renders the optimality certificate carried by the critical
// cycle: the loop of constraints whose accumulated fixed delay must
// fit in the accumulated number of cycle boundaries, proving
// Tc >= delay/crossings. Returns "" when no ratio-bearing cycle binds
// (Tc* = 0 or Tc was fixed above the minimum).
func (r *Result) Explain() string {
	if len(r.CriticalLoop) == 0 || r.criticalB >= -eps {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical constraint loop (%d nodes): %s\n",
		len(r.CriticalLoop), strings.Join(r.CriticalLoop, " -> "))
	crossings := -r.criticalB
	fmt.Fprintf(&b, "accumulated delay %.6g over %.6g cycle boundary crossing(s)\n", r.criticalA, crossings)
	fmt.Fprintf(&b, "=> Tc >= %.6g / %.6g = %.6g, which the schedule achieves exactly\n",
		r.criticalA, crossings, r.CriticalRatio)
	return b.String()
}
