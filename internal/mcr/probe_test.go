package mcr

import (
	"context"
	"math"
	"testing"

	"mintc/internal/core"
	"mintc/internal/gen"
)

// probePair runs the worklist probe (cold) and the dense reference at
// the same tc on fresh builders and cross-checks verdict and result.
func probePair(t *testing.T, c *core.Circuit, tc float64) {
	t.Helper()
	ctx := context.Background()
	bw := newBuilder(c, core.Options{})
	bd := newBuilder(c, core.Options{})
	distW, witW, err := bw.probe(ctx, tc, false)
	if err != nil {
		t.Fatalf("worklist probe: %v", err)
	}
	distD, witD, err := bd.probeDense(ctx, tc)
	if err != nil {
		t.Fatalf("dense probe: %v", err)
	}
	if (witW == nil) != (witD == nil) {
		t.Fatalf("tc=%g: worklist feasible=%v, dense feasible=%v", tc, witW == nil, witD == nil)
	}
	if witW == nil {
		// Both feasible: the least potentials must agree. Relaxation
		// order differs, so allow the eps slop of the strict-improvement
		// guard to accumulate over a path.
		tol := eps * float64(bw.n+1) * 10
		for i := range distW {
			a, b := distW[i], distD[i]
			if math.IsInf(a, -1) && math.IsInf(b, -1) {
				continue
			}
			if math.Abs(a-b) > tol {
				t.Fatalf("tc=%g node %s: worklist potential %g, dense %g", tc, bw.names[i], a, b)
			}
		}
		return
	}
	// Both infeasible: each witness must be a genuinely positive cycle.
	for name, wit := range map[string][]edge{"worklist": witW, "dense": witD} {
		var w float64
		for _, e := range wit {
			w += e.a + e.b*tc
		}
		if w <= 0 {
			t.Fatalf("tc=%g: %s witness cycle has non-positive weight %g", tc, name, w)
		}
	}
}

// TestWorklistProbeMatchesDense cross-checks the SPFA worklist probe
// against the dense Bellman–Ford reference on every suite workload, at
// the optimum, above it (feasible), and below it (infeasible when the
// optimum is ratio-bound).
func TestWorklistProbeMatchesDense(t *testing.T) {
	for _, bm := range gen.Suite() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			r, err := Solve(bm.Circuit, core.Options{})
			if err != nil {
				t.Skipf("Solve: %v", err)
			}
			probePair(t, bm.Circuit, r.Tc)
			probePair(t, bm.Circuit, r.Tc+1)
			probePair(t, bm.Circuit, r.Tc*2+5)
			if r.Tc > 1 {
				probePair(t, bm.Circuit, r.Tc-1)
				probePair(t, bm.Circuit, r.Tc/2)
			}
		})
	}
}

// TestWarmStartedSolveIsDeterministic: the warm-started Lawler search
// must give bit-identical results across repeated solves, and the
// reusable Solver (which keeps its warm buffers across SolveCtx calls)
// must agree with a fresh one-shot Solve.
func TestWarmStartedSolveIsDeterministic(t *testing.T) {
	for _, bm := range gen.Suite() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			r1, err1 := Solve(bm.Circuit, core.Options{})
			r2, err2 := Solve(bm.Circuit, core.Options{})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("errors differ: %v vs %v", err1, err2)
			}
			if err1 != nil {
				t.Skipf("Solve: %v", err1)
			}
			if r1.Tc != r2.Tc {
				t.Fatalf("Tc differs across runs: %v vs %v", r1.Tc, r2.Tc)
			}
			for i := range r1.D {
				if r1.D[i] != r2.D[i] {
					t.Fatalf("D[%d] differs across runs: %v vs %v", i, r1.D[i], r2.D[i])
				}
			}
			s, err := NewSolver(bm.Circuit, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for run := 0; run < 3; run++ {
				rs, err := s.Solve()
				if err != nil {
					t.Fatal(err)
				}
				if rs.Tc != r1.Tc {
					t.Fatalf("run %d: reusable solver Tc %v != one-shot %v", run, rs.Tc, r1.Tc)
				}
			}
		})
	}
}

func suiteCircuit(tb testing.TB, name string) *core.Circuit {
	tb.Helper()
	for _, bm := range gen.Suite() {
		if bm.Name == name {
			return bm.Circuit
		}
	}
	tb.Fatalf("suite workload %q not found", name)
	return nil
}

// BenchmarkProbe measures one cold feasibility probe at the optimum on
// a heavyweight suite workload, worklist vs dense reference.
func BenchmarkProbe(b *testing.B) {
	c := suiteCircuit(b, "rand-large")
	r, err := Solve(c, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	bld := newBuilder(c, core.Options{})
	b.Run("worklist", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, wit, err := bld.probe(ctx, r.Tc, false); err != nil || wit != nil {
				b.Fatalf("wit=%v err=%v", wit, err)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, wit, err := bld.probeDense(ctx, r.Tc); err != nil || wit != nil {
				b.Fatalf("wit=%v err=%v", wit, err)
			}
		}
	})
}

// BenchmarkSolve measures the full warm-started Lawler search.
func BenchmarkSolve(b *testing.B) {
	c := suiteCircuit(b, "rand-large")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(c, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
