package mcr

import (
	"context"
	"fmt"

	"mintc/internal/core"
)

// Solver is a reusable min-cycle-ratio engine for design iterations:
// the constraint graph is built once and worst-case path delays may be
// updated in place between solves — the design-side analogue of
// core.Evaluator. The circuit's structure (synchronizers, paths, and
// every option other than the delays) is fixed at construction;
// MinDelay-dependent hold rows keep their construction-time values.
type Solver struct {
	b    *builder
	opts core.Options
	// baseA[p] is the affine constant of path p's edge minus the
	// worst-case delay, so SetDelay is a single write.
	baseA []float64
}

// NewSolver compiles the circuit once for repeated solves.
func NewSolver(c *core.Circuit, opts core.Options) (*Solver, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	b := newBuilder(c, opts)
	s := &Solver{b: b, opts: opts, baseA: make([]float64, len(c.Paths()))}
	for p, ei := range b.pathEdge {
		s.baseA[p] = b.edges[ei].a - c.Paths()[p].Delay
	}
	return s, nil
}

// SetDelay updates path p's worst-case delay for subsequent solves
// (the underlying circuit is not modified).
func (s *Solver) SetDelay(p int, d float64) {
	if p < 0 || p >= len(s.baseA) {
		panic(fmt.Sprintf("mcr: Solver.SetDelay path %d out of range", p))
	}
	s.b.edges[s.b.pathEdge[p]].a = s.baseA[p] + d
}

// Solve computes the optimal cycle time for the current delays.
func (s *Solver) Solve() (*Result, error) {
	return s.SolveCtx(context.Background())
}

// SolveCtx is Solve with cancellation; any obs recorder carried by the
// context receives the probe counts.
func (s *Solver) SolveCtx(ctx context.Context) (*Result, error) {
	return solveWith(ctx, s.b, s.opts)
}
