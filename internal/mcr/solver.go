package mcr

import (
	"context"
	"fmt"

	"mintc/internal/core"
)

// Solver is a reusable min-cycle-ratio engine for design iterations:
// the constraint graph is built once and worst-case path delays may be
// updated in place between solves — the design-side analogue of
// core.Evaluator. The circuit's structure (synchronizers, paths, and
// every option other than the delays) is fixed at construction.
type Solver struct {
	b    *builder
	opts core.Options
	// baseA[p] is the affine constant of path p's edge minus the
	// worst-case delay, so SetDelay is a single write.
	baseA []float64
	// holdBaseA[p] and consMin[p] are the construction-time affine
	// constant and best-case delay of path p's hold edge (when one
	// exists): SetDelay repairs the hold constant with the same
	// MinDelay clamp DelayOverlay.With applies — the effective
	// best-case delay is min(construction MinDelay, new delay), so the
	// repaired constant is holdBaseA + (consMin − clamped).
	holdBaseA []float64
	consMin   []float64
}

// NewSolver compiles the circuit once for repeated solves.
func NewSolver(c *core.Circuit, opts core.Options) (*Solver, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return newSolverOn(newBuilder(c, opts), opts, nil), nil
}

// newSolverOn wraps a built constraint graph, recording the per-path
// base constants SetDelay repairs. Delays (and best-case delays) are
// read through ov when non-nil, else from the circuit.
func newSolverOn(b *builder, opts core.Options, ov *core.DelayOverlay) *Solver {
	c := b.c
	s := &Solver{
		b:         b,
		opts:      opts,
		baseA:     make([]float64, len(c.Paths())),
		holdBaseA: make([]float64, len(c.Paths())),
		consMin:   make([]float64, len(c.Paths())),
	}
	for p, ei := range b.pathEdge {
		if ei < 0 {
			continue // outside the subsystem; SetDelay panics on it
		}
		d, min := c.Paths()[p].Delay, c.Paths()[p].MinDelay
		if ov != nil {
			d, min = ov.Delay(p), ov.MinDelay(p)
		}
		s.baseA[p] = b.edges[ei].a - d
		if hi := b.holdEdge[p]; hi >= 0 {
			s.holdBaseA[p] = b.edges[hi].a
			s.consMin[p] = min
		}
	}
	return s
}

// SetDelay updates path p's worst-case delay for subsequent solves
// (the underlying circuit is not modified). When the path carries a
// conservative hold edge, its best-case delay is clamped to
// min(construction MinDelay, d) — the same composition
// DelayOverlay.With and Circuit.SetPathDelay apply — and the hold
// constant repaired accordingly. On a component solver
// (NewComponentSolver) only intra-component paths may be edited; the
// rest are not part of the subsystem and panic.
func (s *Solver) SetDelay(p int, d float64) {
	if p < 0 || p >= len(s.baseA) {
		panic(fmt.Sprintf("mcr: Solver.SetDelay path %d out of range", p))
	}
	ei := s.b.pathEdge[p]
	if ei < 0 {
		panic(fmt.Sprintf("mcr: Solver.SetDelay path %d is outside this solver's subsystem", p))
	}
	s.b.edges[ei].a = s.baseA[p] + d
	if hi := s.b.holdEdge[p]; hi >= 0 {
		m := s.consMin[p]
		if d < m {
			m = d
		}
		s.b.edges[hi].a = s.holdBaseA[p] + (s.consMin[p] - m)
	}
}

// SetDelayMin is SetDelay with a caller-supplied effective best-case
// delay instead of the min(construction MinDelay, d) clamp. Overlay
// reconciliation needs it: chained DelayOverlay edits compose their
// MinDelay clamps edit over edit, so the overlay's effective best-case
// delay for a path can differ from what SetDelay's single-step clamp
// would produce — the caller reads the overlay's own MinDelay and
// passes it through verbatim.
func (s *Solver) SetDelayMin(p int, d, minEff float64) {
	if p < 0 || p >= len(s.baseA) {
		panic(fmt.Sprintf("mcr: Solver.SetDelayMin path %d out of range", p))
	}
	ei := s.b.pathEdge[p]
	if ei < 0 {
		panic(fmt.Sprintf("mcr: Solver.SetDelayMin path %d is outside this solver's subsystem", p))
	}
	s.b.edges[ei].a = s.baseA[p] + d
	if hi := s.b.holdEdge[p]; hi >= 0 {
		s.b.edges[hi].a = s.holdBaseA[p] + (s.consMin[p] - minEff)
	}
}

// SetProbeWorkers bounds the chunked probe's relaxation worker pool
// for subsequent solves (0 restores the GOMAXPROCS default). Results
// are bit-identical for every worker count — see parallel.go — so this
// only tunes CPU usage.
func (s *Solver) SetProbeWorkers(w int) { s.b.probeWorkers = w }

// Potentials returns a copy of the node potentials left by the most
// recent probe on this solver, or nil when none ran. Together with
// SeedPotentials it lets a caller persist a converged fixpoint (e.g. on
// decomp.State) and warm-start a future solver over the same subsystem
// from it instead of from -Inf.
func (s *Solver) Potentials() []float64 {
	if !s.b.distValid {
		return nil
	}
	out := make([]float64, len(s.b.dist))
	copy(out, s.b.dist)
	return out
}

// SeedPotentials installs externally persisted potentials as the warm
// start for the next warm solve (MinTcFromWarmCtx/SolveFromWarmCtx).
// Any finite potentials are sound starting points for the feasibility
// probe (shift invariance of difference constraints), so seeding
// changes cost, never answers; a length mismatch (different subsystem)
// is ignored. The first warm probe consuming a seed reports a
// warm_potential_hits tick.
func (s *Solver) SeedPotentials(pot []float64) {
	s.b.ensureScratch()
	if len(pot) != len(s.b.dist) {
		return
	}
	copy(s.b.dist, pot)
	s.b.distValid = true
	s.b.seededPot = true
}

// WitnessBound recomputes the most recent witness cycle's ratio
// against the current edge constants. Edge endpoints never change
// under SetDelay — only the affine constants move — so the stored
// cycle is still a real cycle of the graph and its ratio is a sound
// cycle-time lower bound at the current delays, however stale the
// delays that found it. Returns ok == false when no ratio-bearing
// witness is stored (no probe found one, or the cycle crosses no
// boundary at the current constants). This is what makes a sweep walk
// cheap: while the same cycle stays critical, each point costs one
// ratio recomputation plus one warm feasible probe.
func (s *Solver) WitnessBound() (bound float64, ok bool) {
	if len(s.b.witIdx) == 0 {
		return 0, false
	}
	var sumA, sumB float64
	for _, ei := range s.b.witIdx {
		sumA += s.b.edges[ei].a
		sumB += s.b.edges[ei].b
	}
	if sumB >= -eps {
		return 0, false
	}
	return sumA / -sumB, true
}

// Solve computes the optimal cycle time for the current delays.
func (s *Solver) Solve() (*Result, error) {
	return s.SolveCtx(context.Background())
}

// SolveCtx is Solve with cancellation; any obs recorder carried by the
// context receives the probe counts.
func (s *Solver) SolveCtx(ctx context.Context) (*Result, error) {
	return solveWith(ctx, s.b, s.opts)
}
