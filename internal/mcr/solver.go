package mcr

import (
	"context"
	"fmt"

	"mintc/internal/core"
)

// Solver is a reusable min-cycle-ratio engine for design iterations:
// the constraint graph is built once and worst-case path delays may be
// updated in place between solves — the design-side analogue of
// core.Evaluator. The circuit's structure (synchronizers, paths, and
// every option other than the delays) is fixed at construction.
type Solver struct {
	b    *builder
	opts core.Options
	// baseA[p] is the affine constant of path p's edge minus the
	// worst-case delay, so SetDelay is a single write.
	baseA []float64
	// holdBaseA[p] and consMin[p] are the construction-time affine
	// constant and best-case delay of path p's hold edge (when one
	// exists): SetDelay repairs the hold constant with the same
	// MinDelay clamp DelayOverlay.With applies — the effective
	// best-case delay is min(construction MinDelay, new delay), so the
	// repaired constant is holdBaseA + (consMin − clamped).
	holdBaseA []float64
	consMin   []float64
}

// NewSolver compiles the circuit once for repeated solves.
func NewSolver(c *core.Circuit, opts core.Options) (*Solver, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return newSolverOn(newBuilder(c, opts), opts, nil), nil
}

// newSolverOn wraps a built constraint graph, recording the per-path
// base constants SetDelay repairs. Delays (and best-case delays) are
// read through ov when non-nil, else from the circuit.
func newSolverOn(b *builder, opts core.Options, ov *core.DelayOverlay) *Solver {
	c := b.c
	s := &Solver{
		b:         b,
		opts:      opts,
		baseA:     make([]float64, len(c.Paths())),
		holdBaseA: make([]float64, len(c.Paths())),
		consMin:   make([]float64, len(c.Paths())),
	}
	for p, ei := range b.pathEdge {
		if ei < 0 {
			continue // outside the subsystem; SetDelay panics on it
		}
		d, min := c.Paths()[p].Delay, c.Paths()[p].MinDelay
		if ov != nil {
			d, min = ov.Delay(p), ov.MinDelay(p)
		}
		s.baseA[p] = b.edges[ei].a - d
		if hi := b.holdEdge[p]; hi >= 0 {
			s.holdBaseA[p] = b.edges[hi].a
			s.consMin[p] = min
		}
	}
	return s
}

// SetDelay updates path p's worst-case delay for subsequent solves
// (the underlying circuit is not modified). When the path carries a
// conservative hold edge, its best-case delay is clamped to
// min(construction MinDelay, d) — the same composition
// DelayOverlay.With and Circuit.SetPathDelay apply — and the hold
// constant repaired accordingly. On a component solver
// (NewComponentSolver) only intra-component paths may be edited; the
// rest are not part of the subsystem and panic.
func (s *Solver) SetDelay(p int, d float64) {
	if p < 0 || p >= len(s.baseA) {
		panic(fmt.Sprintf("mcr: Solver.SetDelay path %d out of range", p))
	}
	ei := s.b.pathEdge[p]
	if ei < 0 {
		panic(fmt.Sprintf("mcr: Solver.SetDelay path %d is outside this solver's subsystem", p))
	}
	s.b.edges[ei].a = s.baseA[p] + d
	if hi := s.b.holdEdge[p]; hi >= 0 {
		m := s.consMin[p]
		if d < m {
			m = d
		}
		s.b.edges[hi].a = s.holdBaseA[p] + (s.consMin[p] - m)
	}
}

// Solve computes the optimal cycle time for the current delays.
func (s *Solver) Solve() (*Result, error) {
	return s.SolveCtx(context.Background())
}

// SolveCtx is Solve with cancellation; any obs recorder carried by the
// context receives the probe counts.
func (s *Solver) SolveCtx(ctx context.Context) (*Result, error) {
	return solveWith(ctx, s.b, s.opts)
}
