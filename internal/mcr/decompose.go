package mcr

import (
	"context"

	"mintc/internal/core"
)

// NewSolverOverlay compiles the full constraint graph with path delays
// read through a snapshot overlay — the overlay-native counterpart of
// NewSolver, used by the decomposed solver's global coupling phase. The
// snapshot is already validated (Freeze), so only the options are
// checked. SetDelay edits layer on top of the overlay's delays.
func NewSolverOverlay(ov core.DelayOverlay, opts core.Options) (*Solver, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	c := ov.Base().Circuit()
	return newSolverOn(newBuilderSub(c, opts, &ov, nil), opts, &ov), nil
}

// NewComponentSolver compiles the restriction of the constraint system
// to one latch-graph component: the clock rows plus the member
// synchronizers' rows and the intra-component path arcs, with delays
// read through the overlay. Because the subsystem's constraints are a
// subset of the full system's, its optimal cycle time is a sound lower
// bound on the circuit's — the bound the decomposed solver maximizes
// over components. members is the component's synchronizer set
// (core.Partition.Members).
func NewComponentSolver(ov core.DelayOverlay, opts core.Options, members []int32) (*Solver, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	c := ov.Base().Circuit()
	inComp := make([]bool, c.L())
	for _, m := range members {
		inComp[m] = true
	}
	return newSolverOn(newBuilderSub(c, opts, &ov, inComp), opts, &ov), nil
}

// SolveFromCtx runs the witness-jumping loop starting from a
// caller-supplied cycle-time lower bound (any sound bound; the
// decomposed solver passes the max over per-component optima). If the
// system is feasible at the bound, the bound is returned as the
// optimum — feasible + lower bound = optimal — with a cold extraction
// probe producing the canonical least schedule.
func (s *Solver) SolveFromCtx(ctx context.Context, lower float64) (*Result, error) {
	return solveFrom(ctx, s.b, s.opts, lower, true, false)
}

// SolveFromWarmCtx is SolveFromCtx with the first probe warm-started
// from the potentials left by the previous solve on this Solver (or
// installed by SeedPotentials). The verdict and optimum are unchanged
// — warm starts are sound feasibility oracles — and extraction still
// finishes with a cold probe, so the returned schedule is the same
// canonical least schedule SolveFromCtx produces.
func (s *Solver) SolveFromWarmCtx(ctx context.Context, lower float64) (*Result, error) {
	return solveFrom(ctx, s.b, s.opts, lower, true, true)
}

// MinTcFromCtx is SolveFromCtx without schedule extraction: the result
// carries Tc (and the witness cycle when one binds) but nil Schedule
// and D, skipping the cold re-probe entirely. Sweeps use it — they
// report cycle times only.
func (s *Solver) MinTcFromCtx(ctx context.Context, lower float64) (*Result, error) {
	return solveFrom(ctx, s.b, s.opts, lower, false, false)
}

// MinTcFromWarmCtx is MinTcFromCtx with the first probe warm-started
// from the potentials the previous solve on this Solver left behind.
// Warm potentials are sound starting points for the Bellman–Ford
// feasibility probe at any tc (shift invariance of difference
// constraints), so the verdict — and the optimum the jumps converge
// to, within the probe tolerance — is unchanged; only the
// touched-node count is. Sweeps use it for every point after the
// first: successive sweep points move one edge weight, so the
// previous potentials already satisfy almost the whole graph.
func (s *Solver) MinTcFromWarmCtx(ctx context.Context, lower float64) (*Result, error) {
	return solveFrom(ctx, s.b, s.opts, lower, false, true)
}
