package mcr

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"mintc/internal/obs"
)

// This file is the chunked relaxation engine the probe switches to
// past chunkedCutoff nodes: the frontier (or, on dense rounds, the
// whole node range) is split into fixed-size chunks, each chunk is
// relaxed Gauss–Seidel-style against a lane-local overlay of the
// round-start potentials, and the chunks' proposals are committed by a
// single serial merge in chunk order.
//
// Determinism is by construction, not by locking discipline:
//
//   - chunk boundaries depend only on the frontier and the chunk size,
//     never on the worker count;
//   - a chunk reads the round-start global potentials plus its own
//     local updates — never another chunk's — so its proposal list is
//     a pure function of (chunk contents, round-start state);
//   - the merge replays proposals in chunk order, first-touch order
//     within a chunk, with the same max/eps rule throughout.
//
// Any worker count therefore commits bit-identical potentials, the
// same pred graph, and the same next frontier in the same order; one
// worker IS the serial oracle, running the identical schedule.
//
// Gauss–Seidel inside a chunk is what keeps long dependency chains
// (the giant-ring worst case) moving: a wavefront crosses a whole
// chunk per round instead of one edge per round, so rounds-to-converge
// is about chainLength/chunkSize instead of chainLength.

const (
	// defaultChunkedCutoff is the node count at which probes leave the
	// per-node serial worklist for the chunked engine. Below it the
	// chunk bookkeeping costs more than it saves; above it the chunked
	// schedule wins even single-threaded on chain-heavy graphs.
	defaultChunkedCutoff = 4096
	// defaultChunkSize is the number of sources per chunk. It bounds
	// both the merge batches and the rounds a dependency chain needs
	// (~nodes/chunkSize), while staying small enough that a dense round
	// still fans out across every worker.
	defaultChunkSize = 8192
)

// probeLane is one worker's private relaxation state: an epoch-stamped
// overlay of the global potentials (dist/pred valid where gen ==
// epoch), the first-touch order of overlaid nodes, and the proposal
// log the serial merge replays. Lanes persist on the builder across
// rounds and probes; only the epoch moves.
type probeLane struct {
	dist  []float64
	pred  []int32
	gen   []uint32
	epoch uint32
	dirty []int32
	log   []lanePost
	relax int64
}

// lanePost is one committed-candidate entry of a lane's proposal log:
// the final local potential and predecessor edge of a node some chunk
// improved.
type lanePost struct {
	node     int32
	predEdge int32
	dist     float64
}

// chunkRef locates one chunk's proposals inside its lane's log.
type chunkRef struct {
	lane         int32
	logLo, logHi int32
}

// nextEpoch starts a fresh overlay epoch (O(n) wipe only at the uint32
// wrap, mirroring builder.bumpEpoch).
func (ln *probeLane) nextEpoch() {
	if ln.epoch == math.MaxUint32 {
		for i := range ln.gen {
			ln.gen[i] = 0
		}
		ln.epoch = 0
	}
	ln.epoch++
}

// localDist reads a node's potential through the lane overlay.
func (ln *probeLane) localDist(v int32, global []float64) float64 {
	if ln.gen[v] == ln.epoch {
		return ln.dist[v]
	}
	return global[v]
}

func (b *builder) chunkedCutoffVal() int {
	if b.chunkCutoff != 0 {
		return b.chunkCutoff
	}
	return defaultChunkedCutoff
}

func (b *builder) chunkSizeVal() int {
	if b.chunkSizeOver > 0 {
		return b.chunkSizeOver
	}
	return defaultChunkSize
}

func (b *builder) probeWorkersVal() int {
	if b.probeWorkers > 0 {
		return b.probeWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// ensureLanes grows the persistent lane pool to k lanes.
func (b *builder) ensureLanes(k int) {
	for len(b.lanes) < k {
		b.lanes = append(b.lanes, &probeLane{
			dist: make([]float64, b.n),
			pred: make([]int32, b.n),
			gen:  make([]uint32, b.n),
		})
	}
}

// drainChunked is the chunked round loop: the counterpart of
// drainSerial above the size cutoff, with the same witness-scan policy
// and the same round-n+1 saturation bound (each chunked round is at
// least one full Bellman–Ford pass over the frontier, so the bound's
// ≤ n−1-edge best-walk argument is unchanged). Returns the witness
// cycle's edge indices, nil when the worklist drained (feasible), or
// errDenseFallback.
func (b *builder) drainChunked(ctx context.Context, tc float64, relaxations *int64, rec *obs.Rec) ([]int32, error) {
	n := b.n
	cur, next := b.queue, b.queue2[:0]
	defer func() { b.queue, b.queue2 = cur[:0], next[:0] }()
	chunkSize := b.chunkSizeVal()
	maxWorkers := b.probeWorkersVal()
	checkRound := scanStartRound
	var rounds, parRounds int64
	defer func() {
		rec.Add(obs.ProbeRounds, rounds)
		rec.Add(obs.ProbeParallelRounds, parRounds)
	}()
	for ; len(cur) > 0; rounds++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if int(rounds)+1 > checkRound {
			cyc, cerr := b.bestWitness(ctx, tc)
			if cerr != nil {
				return nil, cerr
			}
			if cyc != nil {
				return cyc, nil
			}
			if int(rounds)+1 > n+1 {
				return nil, errDenseFallback
			}
			if checkRound *= 2; checkRound > n+1 {
				checkRound = n + 1
			}
		}
		// Clear the frontier's worklist bits up front; the merge re-adds
		// every node whose committed potential improved.
		for _, u := range cur {
			b.clearInQueue(u)
		}
		dense := len(cur)*4 >= n
		domain := len(cur)
		if dense {
			domain = n
		}
		numChunks := (domain + chunkSize - 1) / chunkSize
		workers := maxWorkers
		if workers > numChunks {
			workers = numChunks
		}
		if workers < 1 {
			workers = 1
		}
		b.ensureLanes(workers)
		if cap(b.chunkRefs) < numChunks {
			b.chunkRefs = make([]chunkRef, numChunks)
		}
		refs := b.chunkRefs[:numChunks]
		process := func(ln *probeLane, lane int32, k int) {
			lo := k * chunkSize
			hi := lo + chunkSize
			if hi > domain {
				hi = domain
			}
			logLo := int32(len(ln.log))
			if dense {
				b.relaxChunkDense(ln, tc, lo, hi)
			} else {
				b.relaxChunkSparse(ln, tc, cur[lo:hi])
			}
			refs[k] = chunkRef{lane: lane, logLo: logLo, logHi: int32(len(ln.log))}
		}
		if workers == 1 {
			ln := b.lanes[0]
			for k := 0; k < numChunks; k++ {
				process(ln, 0, k)
			}
		} else {
			var nextChunk int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(ln *probeLane, lane int32) {
					defer wg.Done()
					for {
						k := int(atomic.AddInt64(&nextChunk, 1)) - 1
						if k >= numChunks {
							return
						}
						process(ln, lane, k)
					}
				}(b.lanes[w], int32(w))
			}
			wg.Wait()
			parRounds++
		}
		// Serial merge in chunk order: proposals from chunk k are
		// considered before any from chunk k+1 whatever lane computed
		// them, so the committed potentials, the pred graph, and the
		// next frontier's order are independent of scheduling.
		for k := range refs {
			r := refs[k]
			ln := b.lanes[r.lane]
			for _, u := range ln.log[r.logLo:r.logHi] {
				if u.dist > b.dist[u.node]+eps {
					b.dist[u.node] = u.dist
					b.pred[u.node] = u.predEdge
					if !b.inQueue(int(u.node)) {
						b.setInQueue(int(u.node))
						next = append(next, u.node)
					}
				}
			}
		}
		for _, ln := range b.lanes[:workers] {
			*relaxations += ln.relax
			ln.relax = 0
			ln.log = ln.log[:0]
		}
		cur, next = next, cur[:0]
	}
	return nil, nil
}

// relaxChunkSparse relaxes one frontier chunk into the lane overlay:
// Gauss–Seidel within the chunk (a source later in the chunk sees
// updates an earlier source made), Jacobi across chunks (only
// round-start global potentials are read for nodes the lane has not
// overlaid).
func (b *builder) relaxChunkSparse(ln *probeLane, tc float64, sources []int32) {
	ln.nextEpoch()
	ln.dirty = ln.dirty[:0]
	for _, u := range sources {
		du := ln.localDist(u, b.dist)
		if math.IsInf(du, -1) {
			continue
		}
		for a := b.outStart[u]; a < b.outStart[u+1]; a++ {
			ei := b.outEdge[a]
			e := &b.edges[ei]
			to := int32(e.to)
			if d := du + e.a + e.b*tc; d > ln.localDist(to, b.dist)+eps {
				if ln.gen[to] != ln.epoch {
					ln.gen[to] = ln.epoch
					ln.dirty = append(ln.dirty, to)
				}
				ln.dist[to] = d
				ln.pred[to] = ei
				ln.relax++
			}
		}
	}
	ln.flushDirty()
}

// relaxChunkDense relaxes one contiguous node-id chunk (every finite
// source, frontier or not — the chunked form of the serial drain's
// dense round). Node ids inside the chunk are processed in increasing
// order, so a dependency chain laid out along the numbering (the ring
// circuits, whose departure nodes are allocated in ring order) crosses
// the whole chunk in one round.
func (b *builder) relaxChunkDense(ln *probeLane, tc float64, lo, hi int) {
	ln.nextEpoch()
	ln.dirty = ln.dirty[:0]
	for u := int32(lo); u < int32(hi); u++ {
		du := ln.localDist(u, b.dist)
		if math.IsInf(du, -1) {
			continue
		}
		for a := b.outStart[u]; a < b.outStart[u+1]; a++ {
			ei := b.outEdge[a]
			e := &b.edges[ei]
			to := int32(e.to)
			if d := du + e.a + e.b*tc; d > ln.localDist(to, b.dist)+eps {
				if ln.gen[to] != ln.epoch {
					ln.gen[to] = ln.epoch
					ln.dirty = append(ln.dirty, to)
				}
				ln.dist[to] = d
				ln.pred[to] = ei
				ln.relax++
			}
		}
	}
	ln.flushDirty()
}

// flushDirty appends the chunk's final proposals to the lane log in
// first-touch order (the order the merge replays).
func (ln *probeLane) flushDirty() {
	for _, v := range ln.dirty {
		ln.log = append(ln.log, lanePost{node: v, predEdge: ln.pred[v], dist: ln.dist[v]})
	}
}
