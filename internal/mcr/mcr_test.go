package mcr

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"mintc/internal/circuits"
	"mintc/internal/core"
)

func TestSolveExample1MatchesAnalyticCurve(t *testing.T) {
	for d41 := 0.0; d41 <= 160; d41 += 10 {
		c := circuits.Example1(d41)
		r, err := Solve(c, core.Options{})
		if err != nil {
			t.Fatalf("Δ41=%g: %v", d41, err)
		}
		want := circuits.Example1OptimalTc(d41)
		if math.Abs(r.Tc-want) > 1e-6 {
			t.Errorf("Δ41=%g: Tc = %g, want %g", d41, r.Tc, want)
		}
	}
}

func TestSolveScheduleIsFeasible(t *testing.T) {
	for _, d41 := range []float64{0, 60, 120} {
		c := circuits.Example1(d41)
		r, err := Solve(c, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		an, err := core.CheckTc(c, r.Schedule, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !an.Feasible {
			t.Errorf("Δ41=%g: MCR schedule rejected by CheckTc: %v", d41, an.Violations)
		}
	}
}

func TestSolveAgainstLPOnRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for iter := 0; iter < 120; iter++ {
		c := randomCircuit(rng)
		lpRes, lpErr := core.MinTc(c, core.Options{})
		mcrRes, mcrErr := Solve(c, core.Options{})
		switch {
		case errors.Is(lpErr, core.ErrInfeasible):
			if !errors.Is(mcrErr, ErrInfeasible) {
				t.Fatalf("iter %d: LP infeasible but MCR said %v", iter, mcrErr)
			}
		case lpErr != nil:
			t.Fatalf("iter %d: LP error %v", iter, lpErr)
		default:
			if mcrErr != nil {
				t.Fatalf("iter %d: MCR error %v (LP Tc=%g)", iter, mcrErr, lpRes.Schedule.Tc)
			}
			if math.Abs(lpRes.Schedule.Tc-mcrRes.Tc) > 1e-5*(1+lpRes.Schedule.Tc) {
				t.Fatalf("iter %d: LP Tc %g != MCR Tc %g", iter, lpRes.Schedule.Tc, mcrRes.Tc)
			}
		}
	}
}

func TestSolveBinaryAgreesWithSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 40; iter++ {
		c := randomCircuit(rng)
		exact, err1 := Solve(c, core.Options{})
		approx, err2 := SolveBinary(c, core.Options{}, 1e-7)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("iter %d: engines disagree on feasibility: %v vs %v", iter, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if math.Abs(exact.Tc-approx.Tc) > 1e-5*(1+exact.Tc) {
			t.Fatalf("iter %d: exact %g vs binary %g", iter, exact.Tc, approx.Tc)
		}
	}
}

func TestSolveCriticalLoopReported(t *testing.T) {
	c := circuits.Example1(120) // slope-1 region: Ld arc critical
	r, err := Solve(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CriticalLoop) == 0 {
		t.Fatal("no critical loop reported")
	}
	if math.Abs(r.CriticalRatio-r.Tc) > 1e-6 {
		t.Errorf("critical ratio %g != Tc %g", r.CriticalRatio, r.Tc)
	}
}

func TestSolveInfeasibleFFPair(t *testing.T) {
	// Two FFs on phase 1 and phase 2 with a combinational loop that
	// crosses no cycle boundary in one direction... construct a
	// genuinely infeasible case: an FF on phi1 feeding an FF on phi2
	// and back, where the forward arc (phi1->phi2, C=0) forms a
	// zero-boundary cycle with... both arcs must cross for
	// feasibility; phi1->phi2 has C=0 and phi2->phi1 has C=1, so the
	// cycle crosses once and is feasible. Instead use a same-phase FF
	// self-loop with FixedTc below its requirement.
	c := core.NewCircuit(1)
	f := c.AddFF("F", 0, 2, 1)
	c.AddPath(f, f, 10) // needs Tc >= 13
	if _, err := Solve(c, core.Options{FixedTc: 5}); err == nil {
		t.Fatal("FixedTc below minimum accepted")
	}
	r, err := Solve(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Tc-13) > 1e-9 {
		t.Errorf("Tc = %g, want 13", r.Tc)
	}
}

func TestSolveStructurallyInfeasible(t *testing.T) {
	// A combinational loop within a single phase but between a latch
	// and an FF such that no boundary is crossed: FF(phi2) -> FF(phi1)
	// has C_{2,1}=1 (crosses); FF(phi1)->FF(phi2) has C=0. A
	// zero-crossing positive-constant cycle needs... the FF setup arc
	// into phi1's start from a phi2 departure crosses, so build the
	// impossible case differently: a latch whose setup exceeds what
	// its phase can provide is still feasible by growing Tc. True
	// structural infeasibility: path from FF A (phi1) to FF B (phi2)
	// and back from B to A where... B->A crosses (C=1). Constant
	// cycles with B=0 require a cycle of C=0 arcs: phi strictly
	// increasing along every arc — impossible around a cycle. So pure
	// FF/latch circuits are always feasible at large Tc; structural
	// infeasibility needs FixedTc. Document that by asserting
	// feasibility here.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		c := randomCircuit(rng)
		if _, err := Solve(c, core.Options{}); err != nil && !errors.Is(err, ErrInfeasible) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func TestMinPhaseWidthAndSeparationInMCR(t *testing.T) {
	c := circuits.Example1(80)
	base, err := Solve(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sep, err := Solve(c, core.Options{MinSeparation: 7, MinPhaseWidth: 25})
	if err != nil {
		t.Fatal(err)
	}
	if sep.Tc < base.Tc {
		t.Errorf("constrained Tc %g < base %g", sep.Tc, base.Tc)
	}
	for i, w := range sep.Schedule.T {
		if w < 25-1e-9 {
			t.Errorf("phase %d width %g < 25", i, w)
		}
	}
	// Cross-check against LP with same options.
	lpRes, err := core.MinTc(c, core.Options{MinSeparation: 7, MinPhaseWidth: 25})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lpRes.Schedule.Tc-sep.Tc) > 1e-6 {
		t.Errorf("LP %g vs MCR %g with options", lpRes.Schedule.Tc, sep.Tc)
	}
}

func TestFixedTcAboveMinimumKeepsTc(t *testing.T) {
	c := circuits.Example1(80) // Tc* = 110
	r, err := Solve(c, core.Options{FixedTc: 150})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tc != 150 {
		t.Errorf("Tc = %g, want 150 (fixed)", r.Tc)
	}
	an, err := core.CheckTc(c, r.Schedule, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !an.Feasible {
		t.Errorf("fixed-Tc schedule infeasible: %v", an.Violations)
	}
}

func TestProbesCounted(t *testing.T) {
	c := circuits.Example1(80)
	r, err := Solve(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Probes < 1 {
		t.Error("probe count not recorded")
	}
	rb, err := SolveBinary(c, core.Options{}, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Probes <= r.Probes {
		t.Logf("binary probes %d, exact probes %d (exact usually needs far fewer)", rb.Probes, r.Probes)
	}
}

// randomCircuit mirrors core's generator (kept local to avoid exporting
// test helpers across packages).
func randomCircuit(rng *rand.Rand) *core.Circuit {
	k := 1 + rng.Intn(4)
	c := core.NewCircuit(k)
	l := 2 + rng.Intn(8)
	for i := 0; i < l; i++ {
		setup := 1 + rng.Float64()*4
		dq := setup + rng.Float64()*5
		if rng.Float64() < 0.25 {
			c.AddFF("", rng.Intn(k), setup, rng.Float64()*3)
		} else {
			c.AddLatch("", rng.Intn(k), setup, dq)
		}
	}
	ne := 1 + rng.Intn(2*l)
	for e := 0; e < ne; e++ {
		c.AddPath(rng.Intn(l), rng.Intn(l), rng.Float64()*50)
	}
	return c
}

func BenchmarkSolveExample1(b *testing.B) {
	c := circuits.Example1(80)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(c, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExplainCertificate(t *testing.T) {
	c := circuits.Example1(120)
	r, err := Solve(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex := r.Explain()
	if ex == "" {
		t.Fatal("no certificate for a binding loop")
	}
	for _, want := range []string{"critical constraint loop", "Tc >= ", "140"} {
		if !strings.Contains(ex, want) {
			t.Errorf("certificate missing %q:\n%s", want, ex)
		}
	}
}

func TestExplainEmptyWhenUnbound(t *testing.T) {
	c := circuits.Example1(80) // Tc* = 110
	r, err := Solve(c, core.Options{FixedTc: 200})
	if err != nil {
		t.Fatal(err)
	}
	// At a fixed Tc far above the minimum the first probe succeeds and
	// there is no witness cycle.
	if ex := r.Explain(); ex != "" {
		t.Errorf("unexpected certificate:\n%s", ex)
	}
}

func TestPhaseSkewLPMCRAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(9090))
	for iter := 0; iter < 40; iter++ {
		c := randomCircuit(rng)
		sk := make([]float64, c.K())
		for p := range sk {
			sk[p] = rng.Float64() * 4
		}
		opts := core.Options{PhaseSkew: sk, Skew: rng.Float64() * 2}
		lpRes, err1 := core.MinTc(c, opts)
		mcrRes, err2 := Solve(c, opts)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("iter %d: feasibility disagreement: %v vs %v", iter, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if math.Abs(lpRes.Schedule.Tc-mcrRes.Tc) > 1e-5*(1+mcrRes.Tc) {
			t.Fatalf("iter %d: LP %g vs MCR %g under phase skew", iter, lpRes.Schedule.Tc, mcrRes.Tc)
		}
	}
}

func TestDesignForHoldLPMCRAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	agreed := 0
	for iter := 0; iter < 50 && agreed < 15; iter++ {
		c := randomHoldCircuit(rng)
		opts := core.Options{DesignForHold: true}
		lpRes, err1 := core.MinTc(c, opts)
		mcrRes, err2 := Solve(c, opts)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("iter %d: feasibility disagreement under hold rows: %v vs %v", iter, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if math.Abs(lpRes.Schedule.Tc-mcrRes.Tc) > 1e-5*(1+mcrRes.Tc) {
			t.Fatalf("iter %d: LP %g vs MCR %g with hold rows", iter, lpRes.Schedule.Tc, mcrRes.Tc)
		}
		agreed++
	}
	if agreed < 8 {
		t.Fatalf("only %d agreements checked", agreed)
	}
}

func randomHoldCircuit(rng *rand.Rand) *core.Circuit {
	k := 2 + rng.Intn(3)
	c := core.NewCircuit(k)
	l := 2 + rng.Intn(6)
	for i := 0; i < l; i++ {
		setup := 1 + rng.Float64()*2
		dq := setup + rng.Float64()*3
		hold := 0.0
		if rng.Float64() < 0.5 {
			hold = rng.Float64() * 4
		}
		c.AddSync(core.Synchronizer{Phase: rng.Intn(k), Kind: core.Latch, Setup: setup, DQ: dq, Hold: hold})
	}
	for e := 0; e < 1+rng.Intn(2*l); e++ {
		d := 1 + rng.Float64()*40
		c.AddPathFull(core.Path{From: rng.Intn(l), To: rng.Intn(l), Delay: d, MinDelay: d * rng.Float64()})
	}
	return c
}
