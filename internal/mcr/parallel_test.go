package mcr

import (
	"context"
	"math"
	"testing"

	"mintc/internal/core"
	"mintc/internal/gen"
)

// chunkedState is one chunked probe's observable outcome: the verdict,
// bitwise copies of the potentials and predecessor graph (feasible), or
// the witness cycle's edge indices (infeasible).
type chunkedState struct {
	feasible bool
	dist     []float64
	pred     []int32
	wit      []int32
}

// runChunked probes circuit c at tc through the chunked engine with
// the given worker count, forcing every graph — however small — into
// many chunks so the merge logic is genuinely exercised.
func runChunked(t *testing.T, c *core.Circuit, tc float64, workers int) chunkedState {
	t.Helper()
	b := newBuilder(c, core.Options{})
	b.chunkCutoff = 1   // always chunked
	b.chunkSizeOver = 3 // several chunks even on tiny graphs
	b.probeWorkers = workers
	dist, wit, err := b.probe(context.Background(), tc, false)
	if err != nil {
		t.Fatalf("chunked probe (workers=%d): %v", workers, err)
	}
	st := chunkedState{feasible: wit == nil}
	if st.feasible {
		st.dist = append(st.dist, dist...)
		st.pred = append(st.pred, b.pred...)
	} else {
		st.wit = append(st.wit, b.witIdx...)
	}
	return st
}

// TestChunkedProbeParity is the parallel-probe determinism gate: for
// every suite circuit, at feasible and infeasible cycle times, the
// chunked probe must produce BIT-IDENTICAL potentials, predecessor
// graphs, and witness cycles for every worker count (one worker is the
// serial oracle — same chunk schedule, no goroutines). It also
// cross-checks the chunked verdict against the legacy per-node
// worklist drain with probePair's tolerance.
func TestChunkedProbeParity(t *testing.T) {
	for _, bm := range gen.Suite() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			r, err := Solve(bm.Circuit, core.Options{})
			if err != nil {
				t.Skipf("Solve: %v", err)
			}
			tcs := []float64{r.Tc, r.Tc + 1}
			if r.Tc > 1 {
				tcs = append(tcs, r.Tc/2, r.Tc-1)
			}
			for _, tc := range tcs {
				ref := runChunked(t, bm.Circuit, tc, 1)
				for _, workers := range []int{2, 3, 8} {
					got := runChunked(t, bm.Circuit, tc, workers)
					if got.feasible != ref.feasible {
						t.Fatalf("tc=%g workers=%d: feasible=%v, serial oracle %v",
							tc, workers, got.feasible, ref.feasible)
					}
					for i := range ref.dist {
						if got.dist[i] != ref.dist[i] {
							t.Fatalf("tc=%g workers=%d node %d: dist %v != serial %v (bit-identity violated)",
								tc, workers, i, got.dist[i], ref.dist[i])
						}
						if got.pred[i] != ref.pred[i] {
							t.Fatalf("tc=%g workers=%d node %d: pred %d != serial %d (bit-identity violated)",
								tc, workers, i, got.pred[i], ref.pred[i])
						}
					}
					if len(got.wit) != len(ref.wit) {
						t.Fatalf("tc=%g workers=%d: witness length %d != serial %d",
							tc, workers, len(got.wit), len(ref.wit))
					}
					for i := range ref.wit {
						if got.wit[i] != ref.wit[i] {
							t.Fatalf("tc=%g workers=%d: witness edge %d is %d, serial %d",
								tc, workers, i, got.wit[i], ref.wit[i])
						}
					}
				}
				// Cross-engine: the chunked drain against the legacy
				// serial worklist, tolerance per probePair (relaxation
				// order differs, so eps-guard slop may accumulate).
				bs := newBuilder(bm.Circuit, core.Options{})
				bs.chunkCutoff = 1 << 30 // always the serial worklist
				sdist, swit, err := bs.probe(context.Background(), tc, false)
				if err != nil {
					t.Fatalf("serial probe: %v", err)
				}
				if (swit == nil) != ref.feasible {
					t.Fatalf("tc=%g: chunked feasible=%v, serial worklist %v", tc, ref.feasible, swit == nil)
				}
				if ref.feasible {
					tol := eps * float64(bs.n+1) * 10
					for i := range sdist {
						a, b := ref.dist[i], sdist[i]
						if math.IsInf(a, -1) && math.IsInf(b, -1) {
							continue
						}
						if math.Abs(a-b) > tol {
							t.Fatalf("tc=%g node %d: chunked %g vs serial worklist %g", tc, i, a, b)
						}
					}
				}
			}
		})
	}
}

// TestChunkedSolveMatchesSerial runs the full witness-jumping solve
// with the chunked engine forced on and compares the optimum and
// departures against the default (serial, small-graph) path.
func TestChunkedSolveMatchesSerial(t *testing.T) {
	for _, bm := range gen.Suite() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			want, err := Solve(bm.Circuit, core.Options{})
			if err != nil {
				t.Skipf("Solve: %v", err)
			}
			b := newBuilder(bm.Circuit, core.Options{})
			b.chunkCutoff = 1
			b.chunkSizeOver = 5
			got, err := solveFrom(context.Background(), b, core.Options{}, 0, true, false)
			if err != nil {
				t.Fatalf("chunked solve: %v", err)
			}
			if math.Abs(got.Tc-want.Tc) > 1e-9*(1+math.Abs(want.Tc)) {
				t.Fatalf("chunked Tc %v, serial %v", got.Tc, want.Tc)
			}
		})
	}
}

// TestEpochWrapAdversarial pins the uint32 wrap paths of every
// epoch-stamped structure the probe relies on: the builder's shared
// wgen stamps (bumpEpoch — used by bestWitness and probeDense) and the
// chunked lanes' overlay stamps (nextEpoch). A stale stamp surviving a
// wrap would make a node look visited (walk corruption) or overlaid
// (potential corruption); the test drives probes straight through the
// wrap and demands bit-identical outcomes to a fresh builder. Run
// under -race this also re-checks the lane handoff around the wipe.
func TestEpochWrapAdversarial(t *testing.T) {
	c, err := gen.Ring(2, 24, 1, 2, func(int) float64 { return 10 })
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := runChunked(t, c, r.Tc/2, 4) // infeasible: exercises bestWitness
	freshF := runChunked(t, c, r.Tc+1, 4)

	b := newBuilder(c, core.Options{})
	b.chunkCutoff = 1
	b.chunkSizeOver = 3
	b.probeWorkers = 4
	b.ensureScratch()
	// Park the shared walk epoch two bumps from the wrap and poison the
	// stamps with values a wrapped epoch would collide with.
	b.wepoch = math.MaxUint32 - 2
	for i := range b.wgen {
		b.wgen[i] = math.MaxUint32 - 2
	}
	// Pre-build lanes and park their epochs at the edge too, with
	// poisoned stamps and garbage local state underneath.
	b.ensureLanes(4)
	for _, ln := range b.lanes {
		ln.epoch = math.MaxUint32 - 1
		for i := range ln.gen {
			ln.gen[i] = math.MaxUint32 - 1
			ln.dist[i] = 1e300
			ln.pred[i] = 7
		}
	}
	for probes := 0; probes < 6; probes++ { // enough bumps to cross both wraps
		dist, wit, err := b.probe(context.Background(), r.Tc/2, false)
		if err != nil {
			t.Fatal(err)
		}
		if dist != nil || wit == nil {
			t.Fatalf("probe %d: expected infeasible verdict at tc=%g", probes, r.Tc/2)
		}
		if len(b.witIdx) != len(fresh.wit) {
			t.Fatalf("probe %d: witness length %d, fresh %d", probes, len(b.witIdx), len(fresh.wit))
		}
		for i := range fresh.wit {
			if b.witIdx[i] != fresh.wit[i] {
				t.Fatalf("probe %d: witness edge %d is %d, fresh %d", probes, i, b.witIdx[i], fresh.wit[i])
			}
		}
	}
	dist, wit, err := b.probe(context.Background(), r.Tc+1, false)
	if err != nil {
		t.Fatal(err)
	}
	if wit != nil {
		t.Fatalf("expected feasible at tc=%g", r.Tc+1)
	}
	for i := range dist {
		if dist[i] != freshF.dist[i] {
			t.Fatalf("node %d: post-wrap dist %v, fresh %v (bit-identity violated)", i, dist[i], freshF.dist[i])
		}
	}
}

// TestLaneEpochWrapUnit pins nextEpoch's wrap contract directly: at
// MaxUint32 the stamps are wiped before the epoch restarts, so no node
// can alias as overlaid.
func TestLaneEpochWrapUnit(t *testing.T) {
	ln := &probeLane{
		dist: make([]float64, 4),
		pred: make([]int32, 4),
		gen:  make([]uint32, 4),
	}
	global := []float64{10, 20, 30, 40}
	ln.epoch = math.MaxUint32
	for i := range ln.gen {
		ln.gen[i] = math.MaxUint32 // stamped in the pre-wrap epoch
		ln.dist[i] = -999          // garbage that must not leak
	}
	ln.nextEpoch()
	if ln.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", ln.epoch)
	}
	for i := int32(0); i < 4; i++ {
		if got := ln.localDist(i, global); got != global[i] {
			t.Fatalf("node %d: localDist %v after wrap, want global %v", i, got, global[i])
		}
	}
}

// TestInqClearDiscipline pins the worklist bitset contract: a drained
// (feasible) probe leaves every membership bit clear, and an early
// witness exit — which legitimately abandons a live frontier — must
// not perturb the next probe on the same builder.
func TestInqClearDiscipline(t *testing.T) {
	c, err := gen.Ring(2, 16, 1, 2, func(int) float64 { return 10 })
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cutoff := range []int{1, 1 << 30} { // chunked and serial drains
		b := newBuilder(c, core.Options{})
		b.chunkCutoff = cutoff
		b.chunkSizeOver = 3
		if _, wit, err := b.probe(context.Background(), r.Tc+1, false); err != nil || wit != nil {
			t.Fatalf("feasible probe (cutoff=%d): wit=%v err=%v", cutoff, wit, err)
		}
		for w, bits := range b.inq {
			if bits != 0 {
				t.Fatalf("cutoff=%d: inq word %d = %#x after drained probe, want 0", cutoff, w, bits)
			}
		}
		// Infeasible probe abandons its frontier mid-drain...
		if _, wit, err := b.probe(context.Background(), r.Tc/2, false); err != nil || wit == nil {
			t.Fatalf("infeasible probe (cutoff=%d): wit=%v err=%v", cutoff, wit, err)
		}
		// ...and the next cold probe must still match a fresh builder
		// bitwise (the prologue re-arms dist/pred/inq from scratch).
		fb := newBuilder(c, core.Options{})
		fb.chunkCutoff = cutoff
		fb.chunkSizeOver = 3
		want, _, err := fb.probe(context.Background(), r.Tc+1, false)
		if err != nil {
			t.Fatal(err)
		}
		got, wit, err := b.probe(context.Background(), r.Tc+1, false)
		if err != nil || wit != nil {
			t.Fatalf("post-witness probe (cutoff=%d): wit=%v err=%v", cutoff, wit, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cutoff=%d node %d: %v after abandoned frontier, fresh %v", cutoff, i, got[i], want[i])
			}
		}
	}
}
