package lp

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// chainProblem builds a feasible chain program with n variables and
// n-1 coupling rows, big enough that a solve takes many pivots.
func chainProblem(n int) *Problem {
	p := &Problem{}
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVar(fmt.Sprintf("x%d", i), 1)
	}
	for i := 0; i+1 < n; i++ {
		p.AddConstraint(fmt.Sprintf("c%d", i),
			[]Term{{Var: vars[i], Coef: 1}, {Var: vars[i+1], Coef: -1}}, GE, 1)
	}
	p.AddConstraint("floor", []Term{{Var: vars[n-1], Coef: 1}}, GE, 1)
	return p
}

func TestSolveCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := SolveCtx(ctx, chainProblem(400))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sol == nil {
		t.Fatal("want a partial solution for progress accounting")
	}
}

func TestSolveCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	start := time.Now()
	_, err := SolveCtx(ctx, chainProblem(800))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancellation took %v", el)
	}
}

func TestSolveCtxBackgroundMatchesSolve(t *testing.T) {
	p := chainProblem(40)
	a, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != b.Status || a.Obj != b.Obj {
		t.Fatalf("Solve and SolveCtx disagree: %v/%g vs %v/%g", a.Status, a.Obj, b.Status, b.Obj)
	}
}
