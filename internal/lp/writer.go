package lp

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteLPFormat renders the problem in the classic CPLEX LP text
// format, so generated programs can be inspected with (or solved by)
// external LP tooling:
//
//	Minimize
//	 obj: Tc
//	Subject To
//	 c1: T.phi1 - Tc <= 0
//	 ...
//	Bounds
//	 0 <= Tc
//	End
//
// Variable names are sanitized to the format's identifier rules
// (alphanumerics plus a few punctuation characters; a leading letter).
func (p *Problem) WriteLPFormat(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names := make([]string, len(p.names))
	used := map[string]bool{}
	for i, n := range p.names {
		names[i] = uniqueName(sanitize(n, i), used)
	}

	fmt.Fprintln(bw, "Minimize")
	bw.WriteString(" obj:")
	any := false
	for j, c := range p.obj {
		if c == 0 {
			continue
		}
		writeLPTerm(bw, c, names[j], !any)
		any = true
	}
	if !any {
		bw.WriteString(" 0 " + names[0])
	}
	fmt.Fprintln(bw)

	fmt.Fprintln(bw, "Subject To")
	for i, r := range p.rows {
		fmt.Fprintf(bw, " c%d:", i+1)
		coef := map[int]float64{}
		var order []int
		for _, t := range r.Terms {
			if _, seen := coef[t.Var]; !seen {
				order = append(order, t.Var)
			}
			coef[t.Var] += t.Coef
		}
		first := true
		for _, v := range order {
			if coef[v] == 0 {
				continue
			}
			writeLPTerm(bw, coef[v], names[v], first)
			first = false
		}
		if first {
			bw.WriteString(" 0 " + names[0])
		}
		switch r.Rel {
		case LE:
			fmt.Fprintf(bw, " <= %g\n", r.RHS)
		case GE:
			fmt.Fprintf(bw, " >= %g\n", r.RHS)
		case EQ:
			fmt.Fprintf(bw, " = %g\n", r.RHS)
		}
	}

	fmt.Fprintln(bw, "Bounds")
	for _, n := range names {
		fmt.Fprintf(bw, " 0 <= %s\n", n)
	}
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

func writeLPTerm(bw *bufio.Writer, c float64, name string, first bool) {
	switch {
	case c == 1:
		if first {
			fmt.Fprintf(bw, " %s", name)
		} else {
			fmt.Fprintf(bw, " + %s", name)
		}
	case c == -1:
		fmt.Fprintf(bw, " - %s", name)
	case c < 0:
		fmt.Fprintf(bw, " - %g %s", -c, name)
	default:
		if first {
			fmt.Fprintf(bw, " %g %s", c, name)
		} else {
			fmt.Fprintf(bw, " + %g %s", c, name)
		}
	}
}

// sanitize maps arbitrary variable names to LP-format identifiers.
func sanitize(n string, idx int) string {
	if n == "" {
		return fmt.Sprintf("x%d", idx)
	}
	var b strings.Builder
	for i, r := range n {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.':
			if i == 0 && r >= '0' && r <= '9' {
				b.WriteByte('x')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func uniqueName(n string, used map[string]bool) string {
	cand := n
	for i := 2; used[cand]; i++ {
		cand = fmt.Sprintf("%s_%d", n, i)
	}
	used[cand] = true
	return cand
}
