//go:build faultinject

package lp_test

import (
	"context"
	"math"
	"testing"

	"mintc/internal/faultinject"
	"mintc/internal/lp"
)

// TestWarmFaultForcesColdPath: an injected unusable-basis fault on
// "lp.warm" must silently demote SolveCtxFrom to a cold solve — same
// optimum, but no WarmStarted flag — proving the fallback path a real
// corrupted basis would take.
func TestWarmFaultForcesColdPath(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	ctx := context.Background()

	first, err := lp.SolveCtx(ctx, buildGaAs(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	basis := first.Basis()

	warm, err := lp.SolveCtxFrom(ctx, buildGaAs(t, 1.05), basis)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.WarmStarted {
		t.Fatal("control warm solve did not warm-start")
	}

	faultinject.Set("lp.warm", func() error { return lp.ErrSingularBasis })
	cold, err := lp.SolveCtxFrom(ctx, buildGaAs(t, 1.05), basis)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.WarmStarted {
		t.Error("faulted solve still claims WarmStarted")
	}
	if d := math.Abs(cold.Obj - warm.Obj); d > 1e-9 {
		t.Errorf("forced-cold optimum %.15g != warm %.15g (diff %.3g)", cold.Obj, warm.Obj, d)
	}
}
