package lp

// pricer implements candidate-list (partial) Dantzig pricing with the
// same per-column tolerance scheme as the dense oracle, plus a Bland
// full-scan mode for degeneracy stalls. The candidate list remembers
// the most attractive columns from the last full scan; between
// refreshes only those columns are re-priced, so a typical pricing step
// touches K short columns instead of the whole matrix. Correctness is
// unaffected: a candidate is only chosen on its freshly recomputed
// reduced cost, and optimality is only declared after a full rescan
// comes up empty.
type pricer struct {
	st     *store
	cand   []int32
	scores []float64
}

// priceListSize is the candidate-list capacity. Large enough that
// refreshes are rare on SMO programs, small enough that re-pricing the
// list is far cheaper than a full scan. Programs whose eligible column
// count is below fullScanLimit skip the list entirely and price every
// column each iteration — at that size a full scan is as cheap as list
// bookkeeping, and it keeps the pivot trajectory aligned with the dense
// oracle's exact Dantzig rule on the small paper circuits.
const (
	priceListSize = 64
	fullScanLimit = 512
)

// reset discards the candidate list (phase switches and drive-out
// change the duals too much for stale candidates to be useful).
func (pr *pricer) reset() { pr.cand = pr.cand[:0] }

// price returns the entering column id under duals y (row-indexed), or
// -1 at optimality for the phase. where maps column id -> basis
// position (-1 when nonbasic). bland selects Bland's rule: the first
// improving eligible index, via full scan, which guarantees
// termination under degeneracy.
func (pr *pricer) price(y []float64, where []int32, phase1, bland bool) int32 {
	st := pr.st
	lim := int32(st.n + st.m)
	if bland {
		for id := int32(0); id < lim; id++ {
			if where[id] >= 0 || !st.eligible(id) {
				continue
			}
			if st.cost(id, phase1)-st.colDot(y, id) < -st.tol(id) {
				return id
			}
		}
		return -1
	}

	best := int32(-1)
	bestScore := 0.0
	if int(lim) <= fullScanLimit {
		for id := int32(0); id < lim; id++ {
			if where[id] >= 0 || !st.eligible(id) {
				continue
			}
			d := st.cost(id, phase1) - st.colDot(y, id)
			tol := st.tol(id)
			if d >= -tol {
				continue
			}
			if score := d / tol; score < bestScore {
				bestScore = score
				best = id
			}
		}
		return best
	}

	// Re-price the surviving candidates.
	keep := pr.cand[:0]
	for _, id := range pr.cand {
		if where[id] >= 0 {
			continue
		}
		d := st.cost(id, phase1) - st.colDot(y, id)
		tol := st.tol(id)
		if d >= -tol {
			continue
		}
		keep = append(keep, id)
		if score := d / tol; score < bestScore {
			bestScore = score
			best = id
		}
	}
	pr.cand = keep
	if best >= 0 {
		return best
	}

	// Refresh: full scan keeping the top-K columns by scaled reduced
	// cost (the same cross-column comparison the dense oracle uses).
	pr.cand = pr.cand[:0]
	pr.scores = pr.scores[:0]
	weakest := -1
	for id := int32(0); id < lim; id++ {
		if where[id] >= 0 || !st.eligible(id) {
			continue
		}
		d := st.cost(id, phase1) - st.colDot(y, id)
		tol := st.tol(id)
		if d >= -tol {
			continue
		}
		score := d / tol
		if score < bestScore {
			bestScore = score
			best = id
		}
		if len(pr.cand) < priceListSize {
			pr.cand = append(pr.cand, id)
			pr.scores = append(pr.scores, score)
			weakest = -1
			continue
		}
		if weakest < 0 {
			weakest = 0
			for k := 1; k < len(pr.scores); k++ {
				if pr.scores[k] > pr.scores[weakest] {
					weakest = k
				}
			}
		}
		if score < pr.scores[weakest] {
			pr.cand[weakest] = id
			pr.scores[weakest] = score
			weakest = -1
		}
	}
	return best
}
