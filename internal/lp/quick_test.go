package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomProblem builds a bounded random LP from a seed.
func randomProblem(seed int64) (*Problem, *denseLP) {
	rng := rand.New(rand.NewSource(seed))
	d := &denseLP{nVar: 1 + rng.Intn(4)}
	for j := 0; j < d.nVar; j++ {
		d.c = append(d.c, float64(rng.Intn(9)-4))
	}
	for i := 0; i < 1+rng.Intn(6); i++ {
		row := make([]float64, d.nVar)
		for j := range row {
			row[j] = float64(rng.Intn(7) - 3)
		}
		d.a = append(d.a, row)
		d.rel = append(d.rel, Rel(rng.Intn(2)))
		d.rhs = append(d.rhs, float64(rng.Intn(15)-7))
	}
	return d.problem(), d
}

// TestQuickSolutionsAreFeasible: every Optimal answer satisfies its
// own constraints.
func TestQuickSolutionsAreFeasible(t *testing.T) {
	prop := func(seed int64) bool {
		p, d := randomProblem(seed)
		s, err := Solve(p)
		if err != nil {
			return false
		}
		if s.Status != Optimal {
			return true
		}
		return d.feasible(s.X)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDualSigns: for minimization, dObj/dRHS is <= 0 for LE rows
// and >= 0 for GE rows (relaxing a constraint never hurts).
func TestQuickDualSigns(t *testing.T) {
	prop := func(seed int64) bool {
		p, _ := randomProblem(seed)
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return true
		}
		for i := 0; i < p.NumConstraints(); i++ {
			switch p.Constraint(i).Rel {
			case LE:
				if s.Dual[i] > 1e-7 {
					return false
				}
			case GE:
				if s.Dual[i] < -1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickComplementarySlackness: a row with nonzero dual is binding
// (zero slack).
func TestQuickComplementarySlackness(t *testing.T) {
	prop := func(seed int64) bool {
		p, _ := randomProblem(seed)
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return true
		}
		for i := range s.Dual {
			if math.Abs(s.Dual[i]) > 1e-7 && s.Slack[i] > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRHSRangeContainsRHS: the reported basis-validity interval
// always contains the row's own RHS.
func TestQuickRHSRangeContainsRHS(t *testing.T) {
	prop := func(seed int64) bool {
		p, _ := randomProblem(seed)
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return true
		}
		for i := 0; i < p.NumConstraints(); i++ {
			r := p.Constraint(i).RHS
			if s.RHSRange[i][0] > r+1e-6 || s.RHSRange[i][1] < r-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickObjectiveMatchesX: the reported objective equals c·X.
func TestQuickObjectiveMatchesX(t *testing.T) {
	prop := func(seed int64) bool {
		p, d := randomProblem(seed)
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return true
		}
		var obj float64
		for j := range s.X {
			obj += d.c[j] * s.X[j]
		}
		return math.Abs(obj-s.Obj) < 1e-7*(1+math.Abs(obj))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTightenNeverImproves: shrinking the feasible region (adding
// a random extra GE row derived from the current optimum plus a
// violation) can only keep or worsen the objective.
func TestQuickTightenNeverImproves(t *testing.T) {
	prop := func(seed int64, which uint8) bool {
		p, _ := randomProblem(seed)
		s, err := Solve(p)
		if err != nil || s.Status != Optimal || p.NumVars() == 0 {
			return true
		}
		v := int(which) % p.NumVars()
		// Require x_v >= current value + 1.
		p.AddConstraint("tighten", []Term{{Var: v, Coef: 1}}, GE, s.X[v]+1)
		s2, err := Solve(p)
		if err != nil {
			return false
		}
		switch s2.Status {
		case Infeasible:
			return true
		case Unbounded:
			return false // was optimal before; tightening can't unbound
		default:
			return s2.Obj >= s.Obj-1e-6*(1+math.Abs(s.Obj))
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
