//go:build race

package lp

// raceEnabled reports whether the race detector is compiled in. Under
// -race, sync.Pool deliberately drops a fraction of Puts at random to
// widen race coverage, so tests must not demand that every repeat
// solve lands on a recycled arena.
const raceEnabled = true
