package lp

import (
	"context"
	"fmt"
	"math"
	"time"

	"mintc/internal/faultinject"
)

// revised is one sparse revised-simplex solve in flight: the immutable
// store, the LU-factorized basis, the candidate-list pricer, and the
// dense working vectors. All vectors are either row-indexed (duals,
// ftran inputs) or basis-position-indexed (basic values, transformed
// columns); the store's canonical column ids tie them together.
type revised struct {
	st *store
	lu *basisLU
	pr *pricer

	basis []int32 // position -> canonical column id
	where []int32 // canonical column id -> position, -1 if nonbasic
	xB    []float64
	cB    []float64 // basic costs for the current phase

	y  []float64 // row scratch: duals / BTRAN output
	y2 []float64 // row scratch: second BTRAN output (dual simplex rho)
	v  []float64 // row scratch: FTRAN input (self-cleaning)
	c  []float64 // position scratch: BTRAN input (self-cleaning)
	w  []float64 // position scratch: FTRAN output

	pivots int
	stats  SolveStats
}

// resetCold restores the solver state a fresh newRevised-style setup
// would have, used when an abandoned warm attempt falls back to a cold
// start on the same arena: nonbasic maps, the self-cleaning FTRAN/
// BTRAN inputs and the pricer candidate list are reset; xB, cB and the
// LU are fully rebuilt by coldBasis/refactorize anyway. Pivot and
// stats counters are left to the caller (the cold start inherits the
// abandoned attempt's counts).
func (r *revised) resetCold() {
	for i := range r.where {
		r.where[i] = -1
	}
	for i := range r.v {
		r.v[i] = 0
		r.c[i] = 0
	}
	r.pr.reset()
}

// solveRevised runs the sparse revised simplex. With a nil warm basis
// it cold-starts from the slack/artificial basis through phase 1; with
// a warm basis it re-optimizes from there (dual simplex when the basis
// went primal-infeasible), falling back to a cold start whenever the
// basis cannot be used. Returns the same Solution shape, statuses and
// error conventions as the dense oracle.
func solveRevised(ctx context.Context, p *Problem, warm *Basis) (*Solution, error) {
	ar := getArena()
	defer ar.release()
	sol, _, err := solveRevisedArena(ctx, p, warm, ar)
	return sol, err
}

// solveRevisedArena is solveRevised running on an explicit scratch
// arena. The returned *revised stays valid (pointing into the arena)
// until the arena is released; SolveBatch keeps using it for batched
// variant re-solves after the base solve finishes.
func solveRevisedArena(ctx context.Context, p *Problem, warm *Basis, ar *arena) (*Solution, *revised, error) {
	tA := time.Now()
	st, err := assemble(ctx, p, ar)
	if err != nil {
		return &Solution{}, nil, err
	}
	r := ar.revisedFor(st)
	r.stats.Nnz = st.nnz
	r.stats.AssembleTime = time.Since(tA)

	tS := time.Now()
	sol, err := r.run(ctx, p, warm)
	if d := time.Since(tS) - r.stats.FactorTime; d > 0 {
		r.stats.PivotTime = d
	}
	if sol != nil {
		r.stats.ScratchReused = ar.reused
		r.stats.ScratchGrows = ar.grows
		sol.Stats = r.stats
	}
	return sol, r, err
}

func (r *revised) run(ctx context.Context, p *Problem, warm *Basis) (*Solution, error) {
	if warm != nil {
		sol, ok, err := r.warmRun(ctx, p, warm)
		if ok {
			r.stats.WarmStarted = true
			r.stats.WarmPivots = r.pivots
			return sol, err
		}
		// Fall through to a cold start with fresh state, preserving the
		// counters of the abandoned warm attempt.
		r.resetCold()
	}

	if err := r.coldBasis(); err != nil {
		return &Solution{Pivots: r.pivots}, err
	}

	// Phase 1: minimize the artificial sum when any artificial is basic.
	if r.hasBasicArtificials() {
		r.loadCosts(true)
		r.pr.reset()
		stop, err := r.iterate(ctx, 1)
		if err != nil {
			return &Solution{Pivots: r.pivots}, err
		}
		_ = stop // phase 1 cannot be unbounded; treated as optimal
		if r.phaseObj() > 1e-7*(1+r.st.scale) {
			// Phase-1 optimum with positive artificial mass: the phase-1
			// duals are a Farkas certificate of infeasibility. cB still
			// holds phase-1 costs here, so one BTRAN reads them out.
			r.duals()
			ray := make([]float64, r.st.m)
			for i := range ray {
				ray[i] = r.y[i] * r.st.rowSign[i]
			}
			return &Solution{Status: Infeasible, Pivots: r.pivots, FarkasRay: ray}, nil
		}
		if err := r.driveOutArtificials(ctx); err != nil {
			return &Solution{Pivots: r.pivots}, err
		}
	}

	// Phase 2: the real objective.
	r.loadCosts(false)
	r.pr.reset()
	unbounded, err := r.iterate(ctx, 2)
	if err != nil {
		return &Solution{Pivots: r.pivots}, err
	}
	if unbounded {
		return &Solution{Status: Unbounded, Pivots: r.pivots}, nil
	}
	return r.extract(ctx, p)
}

// coldBasis installs the initial slack/artificial basis and factorizes
// it (trivially: every column is a unit vector).
func (r *revised) coldBasis() error {
	st := r.st
	for i := 0; i < st.m; i++ {
		var id int32
		if st.slackSign[i] > 0 {
			id = int32(st.n + i)
		} else {
			id = int32(st.n + st.m + i)
		}
		r.basis[i] = id
		r.where[id] = int32(i)
		r.xB[i] = st.rhs[i]
	}
	return r.refactor()
}

// refactor rebuilds the LU factorization of the current basis, timing
// and counting it in the solve stats.
func (r *revised) refactor() error {
	t := time.Now()
	err := r.lu.factorize(r.st, r.basis)
	r.stats.FactorTime += time.Since(t)
	r.stats.Refactorizations++
	if err != nil {
		return fmt.Errorf("lp: basis refactorization failed: %w", err)
	}
	return nil
}

// recomputeXB refreshes the basic values as B^-1 rhs (called after
// refactorization to shed accumulated eta roundoff).
func (r *revised) recomputeXB() {
	copy(r.v, r.st.rhs)
	r.lu.ftran(r.v, r.xB)
}

func (r *revised) hasBasicArtificials() bool {
	for _, id := range r.basis {
		if r.st.isArtificial(id) {
			return true
		}
	}
	return false
}

// loadCosts fills cB with the per-position basic costs of the phase.
func (r *revised) loadCosts(phase1 bool) {
	for i, id := range r.basis {
		r.cB[i] = r.st.cost(id, phase1)
	}
}

// phaseObj returns the current phase objective cB·xB.
func (r *revised) phaseObj() float64 {
	var z float64
	for i, cb := range r.cB {
		if cb != 0 {
			z += cb * r.xB[i]
		}
	}
	return z
}

// duals computes y = B^-T cB into r.y.
func (r *revised) duals() {
	copy(r.c, r.cB)
	r.lu.btran(r.c, r.y)
}

// ftranCol computes w = B^-1 A_id into r.w.
func (r *revised) ftranCol(id int32) {
	r.st.scatterCol(id, r.v)
	r.lu.ftran(r.v, r.w)
}

// iterate runs primal simplex pivots for the loaded phase costs until
// optimality (false, nil), unboundedness (true, nil), cancellation or
// the iteration limit. Mirrors the dense oracle's conventions: Dantzig
// pricing with per-column tolerances, Bland's rule after a degeneracy
// stall window, ctx polled once per pivot, ratio-test ties broken
// toward the smaller basic column id.
func (r *revised) iterate(ctx context.Context, phase int) (unbounded bool, err error) {
	st := r.st
	tol := eps * (1 + st.scale)
	bland := false
	stall := 0
	window := 4 * (st.m + st.n)
	phase1 := phase == 1
	lastObj := r.phaseObj()

	limit := iterLimit(st.m, st.n)
	for iter := 0; iter < limit; iter++ {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if err := faultinject.Fire("lp.iterate"); err != nil {
			return false, err
		}
		r.duals()
		enter := r.pr.price(r.y, r.where, phase1, bland)
		if enter < 0 {
			return false, nil
		}
		r.ftranCol(enter)

		// Ratio test over the transformed column.
		leave := -1
		var bestRatio float64
		for i := 0; i < st.m; i++ {
			aij := r.w[i]
			if aij <= ratioEps {
				continue
			}
			xb := r.xB[i]
			if xb < 0 {
				xb = 0
			}
			ratio := xb / aij
			if leave == -1 || ratio < bestRatio-ratioEps ||
				(ratio < bestRatio+ratioEps && r.basis[i] < r.basis[leave]) {
				leave = i
				bestRatio = ratio
			}
		}
		if leave == -1 {
			if phase1 {
				// The phase-1 objective is bounded below by zero, so a
				// missing leaving row is numerical; the feasibility
				// check after the loop decides the outcome.
				return false, nil
			}
			return true, nil
		}
		if err := r.pivot(int32(leave), enter, phase1); err != nil {
			return false, err
		}

		if cur := r.phaseObj(); cur < lastObj-tol {
			lastObj = cur
			stall = 0
			bland = false
		} else {
			stall++
			if stall > window {
				bland = true
			}
		}
	}
	return false, iterLimitError(phase, r.pivots, st.m, st.n)
}

// pivot replaces the basic variable at position leave with column
// enter, using the already-computed transformed column in r.w, then
// updates the eta file (refactorizing when it has grown too long).
func (r *revised) pivot(leave, enter int32, phase1 bool) error {
	if err := faultinject.Fire("lp.pivot"); err != nil {
		return err
	}
	wl := r.w[leave]
	if math.Abs(wl) < 1e-11 {
		// Degenerate pivot element: rebuild the factorization and
		// recompute the column once before giving up.
		if err := r.refactor(); err != nil {
			return err
		}
		r.recomputeXB()
		r.ftranCol(enter)
		wl = r.w[leave]
		if math.Abs(wl) < 1e-11 {
			return fmt.Errorf("lp: pivot element %.3g too small (row %d col %d)", wl, leave, enter)
		}
	}
	theta := faultinject.Perturb("lp.pivot.theta", r.xB[leave]/wl)
	for i := range r.xB {
		if int32(i) == leave {
			continue
		}
		if wv := r.w[i]; wv != 0 {
			r.xB[i] -= theta * wv
		}
	}
	r.xB[leave] = theta

	out := r.basis[leave]
	r.where[out] = -1
	r.basis[leave] = enter
	r.where[enter] = leave
	r.cB[leave] = r.st.cost(enter, phase1)
	r.pivots++

	r.lu.update(leave, r.w)
	if r.lu.needRefactor() {
		if err := r.refactor(); err != nil {
			return err
		}
		r.recomputeXB()
	}
	return nil
}

// driveOutArtificials pivots leftover basic artificials (level ~0 after
// a feasible phase 1) out of the basis wherever a usable column exists;
// rows with no usable column are redundant and keep their artificial
// basic at zero, which is harmless because artificials never re-enter.
func (r *revised) driveOutArtificials(ctx context.Context) error {
	st := r.st
	lim := int32(st.n + st.m)
	for i := 0; i < st.m; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !st.isArtificial(r.basis[i]) {
			continue
		}
		// Row i of B^-1 A is rho^T A with rho = B^-T e_i.
		r.c[i] = 1
		r.lu.btran(r.c, r.y)
		for id := int32(0); id < lim; id++ {
			if r.where[id] >= 0 || !st.eligible(id) {
				continue
			}
			if math.Abs(st.colDot(r.y, id)) <= 1e-7 {
				continue
			}
			r.ftranCol(id)
			if err := r.pivot(int32(i), id, true); err != nil {
				return err
			}
			break
		}
	}
	return nil
}

// extract finalizes the optimal solution: one last refactorization
// sheds the eta file's accumulated roundoff, then primal values, duals,
// slacks, ranging and the canonical basis are read out.
func (r *revised) extract(ctx context.Context, p *Problem) (*Solution, error) {
	st := r.st
	if r.lu.nEtas() > 0 {
		if err := r.refactor(); err != nil {
			return &Solution{Pivots: r.pivots}, err
		}
		r.recomputeXB()
	}

	x := make([]float64, st.n)
	for i, id := range r.basis {
		if int(id) < st.n {
			v := faultinject.Perturb("lp.extract.x", r.xB[i])
			if math.Abs(v) < zeroSnap {
				v = 0
			}
			x[id] = v
		}
	}
	var objVal float64
	for j, cj := range p.obj {
		objVal += cj * x[j]
	}

	// Duals in the original row space: y solves B^T y = cB in the
	// normalized system; undo the row flips.
	r.loadCosts(false)
	r.duals()
	dual := make([]float64, st.m)
	for i := 0; i < st.m; i++ {
		d := r.y[i] * st.rowSign[i]
		if math.Abs(d) < zeroSnap {
			d = 0
		}
		dual[i] = d
	}

	ranges, err := r.rhsRanges(ctx, p)
	if err != nil {
		return &Solution{Pivots: r.pivots}, err
	}

	enc := make([]int32, st.m)
	copy(enc, r.basis)
	return &Solution{
		Status:   Optimal,
		Obj:      objVal,
		X:        x,
		Dual:     dual,
		Slack:    clampSlacks(rowSlacks(p, x)),
		Pivots:   r.pivots,
		RHSRange: ranges,
		basis:    enc,
	}, nil
}

// rhsRanges computes per-row RHS ranging intervals with one FTRAN of
// the row's unit vector each: d = B^-1 e_r gives the sensitivity of
// every basic value to that RHS, and the basis stays optimal while all
// basic values stay nonnegative. Matches the dense oracle's formula.
func (r *revised) rhsRanges(ctx context.Context, p *Problem) ([][2]float64, error) {
	st := r.st
	ranges := make([][2]float64, st.m)
	for row := 0; row < st.m; row++ {
		if row&127 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		r.v[row] = 1
		r.lu.ftran(r.v, r.w)
		lo, hi := math.Inf(-1), math.Inf(1)
		for i := 0; i < st.m; i++ {
			d := r.w[i] * st.rowSign[row] // d(xB[i]) / d(original RHS_row)
			if math.Abs(d) < 1e-12 {
				continue
			}
			bound := -r.xB[i] / d
			if d > 0 {
				if bound > lo {
					lo = bound
				}
			} else {
				if bound < hi {
					hi = bound
				}
			}
		}
		base := p.rows[row].RHS
		ranges[row] = [2]float64{base + lo, base + hi}
	}
	return ranges, nil
}
