package lp

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteLPFormatBasic(t *testing.T) {
	var p Problem
	x := p.AddVar("Tc", 1)
	y := p.AddVar("s.phi1", 0)
	p.AddConstraint("r1", []Term{{x, 1}, {y, -1}}, GE, 2)
	p.AddConstraint("r2", []Term{{y, 2}}, LE, 10)
	p.AddConstraint("r3", []Term{{x, 1}}, EQ, 5)
	var buf bytes.Buffer
	if err := p.WriteLPFormat(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Minimize", " obj: Tc", "Subject To",
		"c1: Tc - s.phi1 >= 2", "c2: 2 s.phi1 <= 10", "c3: Tc = 5",
		"Bounds", "0 <= Tc", "End",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LP format missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLPFormatSanitizesNames(t *testing.T) {
	var p Problem
	a := p.AddVar("D.L4->L1", 1)
	b := p.AddVar("9lives", 0)
	c := p.AddVar("", 0)
	p.AddConstraint("r", []Term{{a, 1}, {b, 1}, {c, 1}}, GE, 1)
	var buf bytes.Buffer
	if err := p.WriteLPFormat(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, ">L1") {
		t.Errorf("unsanitized name in output:\n%s", out)
	}
	if !strings.Contains(out, "D.L4__L1") {
		t.Errorf("sanitized arrow name missing:\n%s", out)
	}
	if !strings.Contains(out, "x9lives") {
		t.Errorf("leading-digit fix missing:\n%s", out)
	}
	if !strings.Contains(out, "x2") {
		t.Errorf("empty-name fallback missing:\n%s", out)
	}
}

func TestWriteLPFormatNameCollisions(t *testing.T) {
	var p Problem
	a := p.AddVar("x y", 1) // sanitizes to x_y
	b := p.AddVar("x_y", 1) // collides
	p.AddConstraint("r", []Term{{a, 1}, {b, 1}}, GE, 1)
	var buf bytes.Buffer
	if err := p.WriteLPFormat(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "x_y_2") {
		t.Errorf("collision not resolved:\n%s", out)
	}
}

func TestWriteLPFormatAccumulatesRepeats(t *testing.T) {
	var p Problem
	x := p.AddVar("x", 0)
	p.AddConstraint("r", []Term{{x, 1}, {x, 1}}, LE, 4)
	var buf bytes.Buffer
	if err := p.WriteLPFormat(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 x <= 4") {
		t.Errorf("repeated terms not accumulated:\n%s", buf.String())
	}
}

func TestWriteLPFormatEmptyObjective(t *testing.T) {
	var p Problem
	p.AddVar("x", 0)
	var buf bytes.Buffer
	if err := p.WriteLPFormat(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obj: 0 x") {
		t.Errorf("empty objective not handled:\n%s", buf.String())
	}
}
