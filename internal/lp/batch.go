package lp

import (
	"context"
	"fmt"
	"math"

	"mintc/internal/faultinject"
)

// RHSPatch replaces one constraint row's right-hand side. A slice of
// patches describes one variant program in a SolveBatch call; rows not
// mentioned keep the base problem's RHS.
type RHSPatch struct {
	Row int
	RHS float64
}

// batchWidth is how many variant right-hand sides one ftranN pass
// carries. Wide enough to amortize the L/U index walks, narrow enough
// that the flat vector block stays cache-resident at SMO row counts.
const batchWidth = 8

// SolveBatch solves the base problem p (warm-started from warm when
// usable) and then k RHS-only variants of it, amortizing one basis
// factorization across the whole batch. This is the sweep/parametric
// fast path: SMO delay edits enter the LP only through RHS values, so
// the base optimum's reduced costs — which depend on the basis and
// costs alone, never the RHS — remain optimal for every variant whose
// re-solved basic values stay feasible. Those variants are answered
// closed-form from one batched multi-RHS FTRAN (xB = B⁻¹·rhs) with
// zero pivots, bit-identical to what a warm-started SolveCtxFrom of
// the patched problem would return; variants that leave the base
// basis (infeasible basic values, sign-flipped rows, or a non-optimal
// base) fall back transparently to an individual warm-started solve.
//
// The returned variant Solutions carry the shared base duals and
// basis, their own X/Obj/Slack, and no RHSRange (ranging costs O(m²)
// per variant and sweep callers do not read it; run a full SolveCtx on
// a variant of interest to get it). The base Solution is complete.
//
// An out-of-range patch row is a programming error and fails the
// whole call. A nil error with a non-Optimal base status still solves
// every variant (cold) — feasibility can differ between variants.
func SolveBatch(ctx context.Context, p *Problem, variants [][]RHSPatch, warm *Basis) (*Solution, []*Solution, error) {
	m := len(p.rows)
	for _, patches := range variants {
		for _, pc := range patches {
			if pc.Row < 0 || pc.Row >= m {
				return nil, nil, fmt.Errorf("lp: SolveBatch patch row %d out of range (m=%d)", pc.Row, m)
			}
		}
	}
	outs := make([]*Solution, len(variants))

	// The dense oracle and zero-variable programs have no batched
	// path; solve everything individually so the solver knob and the
	// trivial-program conventions stay authoritative.
	if wantDense(ctx) || len(p.names) == 0 {
		base, err := SolveCtxFrom(ctx, p, warm)
		if err != nil {
			return base, outs, err
		}
		err = solveVariantsFallback(ctx, p, variants, outs, base.Basis(), nil)
		return base, outs, err
	}

	if faultinject.Fire("lp.warm") != nil {
		warm = nil // injected unusable-basis fault: force the cold path
	}
	if warm != nil && (warm.m != m || warm.n != len(p.names)) {
		warm = nil
	}

	ar := getArena()
	defer ar.release()
	base, r, err := solveRevisedArena(ctx, p, warm, ar)
	if err != nil {
		return base, outs, err
	}
	if base.Status != Optimal {
		err = solveVariantsFallback(ctx, p, variants, outs, nil, nil)
		return base, outs, err
	}
	// extract left the eta file empty (it refactorizes before reading
	// the solution out), r.y holding the phase-2 duals and r.cB the
	// phase-2 costs; the closed-form variant extraction below relies on
	// exactly that state.
	st := r.st
	feasTol := 1e-7 * (1 + st.scale)
	baseBasis := base.Basis()

	var fallback []int // variant indices needing an individual solve
	for lo := 0; lo < len(variants); lo += batchWidth {
		if err := ctx.Err(); err != nil {
			return base, outs, err
		}
		hi := lo + batchWidth
		if hi > len(variants) {
			hi = len(variants)
		}
		k := hi - lo
		vecs := ar.batchVectors(3*k, st.m)
		vs, xbs, zs := vecs[:k], vecs[k:2*k], vecs[2*k:]

		// Build each variant's normalized RHS. assemble flips a row's
		// sign when its RHS is negative; a patch that crosses zero
		// would change the row's normalization (coefficients and
		// relation included), so only sign-preserving patches reuse the
		// base factorization.
		live := 0
		idx := make([]int, 0, k)
		for vi := lo; vi < hi; vi++ {
			ok := true
			for _, pc := range variants[vi] {
				if (p.rows[pc.Row].RHS < 0) != (pc.RHS < 0) {
					ok = false
					break
				}
			}
			if !ok {
				fallback = append(fallback, vi)
				continue
			}
			v := vs[live]
			copy(v, st.rhs)
			for _, pc := range variants[vi] {
				v[pc.Row] = st.rowSign[pc.Row] * pc.RHS
			}
			idx = append(idx, vi)
			live++
		}
		if live == 0 {
			continue
		}
		r.lu.ftranN(vs[:live], xbs[:live], zs[:live])

		for j := 0; j < live; j++ {
			vi := idx[j]
			xb := xbs[j]
			if !variantFeasible(r, xb, feasTol) {
				fallback = append(fallback, vi)
				continue
			}
			outs[vi] = r.extractVariant(p, variants[vi], xb, base)
		}
	}

	err = solveVariantsFallback(ctx, p, variants, outs, baseBasis, fallback)
	return base, outs, err
}

// variantFeasible reports whether the re-solved basic values keep the
// base basis usable for a variant: primal feasible within tolerance
// and no leftover basic artificial above tolerance (such an artificial
// means this basis cannot certify the variant's feasibility; phase 1
// must decide).
func variantFeasible(r *revised, xb []float64, feasTol float64) bool {
	for _, v := range xb {
		if v < -feasTol {
			return false
		}
	}
	for i, id := range r.basis {
		if r.st.isArtificial(id) && xb[i] > feasTol {
			return false
		}
	}
	return true
}

// extractVariant reads a variant solution out of the base basis and
// its re-solved basic values, mirroring extract's conventions exactly
// (perturbation hook, zero snapping, slack clamping) so the result is
// bit-identical to a zero-pivot warm re-solve of the patched problem.
func (r *revised) extractVariant(p *Problem, patches []RHSPatch, xb []float64, base *Solution) *Solution {
	st := r.st
	x := make([]float64, st.n)
	for i, id := range r.basis {
		if int(id) < st.n {
			v := faultinject.Perturb("lp.extract.x", xb[i])
			if math.Abs(v) < zeroSnap {
				v = 0
			}
			x[id] = v
		}
	}
	var objVal float64
	for j, cj := range p.obj {
		objVal += cj * x[j]
	}
	dual := make([]float64, st.m)
	copy(dual, base.Dual)
	enc := make([]int32, st.m)
	copy(enc, r.basis)

	stats := SolveStats{
		Nnz:           st.nnz,
		WarmStarted:   true,
		ScratchReused: base.Stats.ScratchReused,
	}
	return &Solution{
		Status: Optimal,
		Obj:    objVal,
		X:      x,
		Dual:   dual,
		Slack:  clampSlacks(rowSlacksPatched(p, x, patches)),
		Pivots: base.Pivots,
		Stats:  stats,
		basis:  enc,
	}
}

// rowSlacksPatched is rowSlacks against patched RHS values. Patched
// rows are recomputed from scratch in rowSlacks' exact operation
// order (not adjusted by an RHS delta, which would reassociate the
// arithmetic and break last-bit identity with a patched-problem
// solve).
func rowSlacksPatched(p *Problem, x []float64, patches []RHSPatch) []float64 {
	s := rowSlacks(p, x)
	for _, pc := range patches {
		r := p.rows[pc.Row]
		var lhs float64
		for _, t := range r.Terms {
			if x != nil {
				lhs += t.Coef * x[t.Var]
			}
		}
		switch r.Rel {
		case LE:
			s[pc.Row] = pc.RHS - lhs
		case GE:
			s[pc.Row] = lhs - pc.RHS
		default:
			s[pc.Row] = 0
		}
	}
	return s
}

// solveVariantsFallback runs an individual (warm-started when a basis
// is given) solve for each listed variant index — or for every variant
// still nil in outs when which is nil — by patching the base problem's
// rows. Row slices are shared with the base problem; only the RHS
// values differ.
func solveVariantsFallback(ctx context.Context, p *Problem, variants [][]RHSPatch, outs []*Solution, warm *Basis, which []int) error {
	solveOne := func(vi int) error {
		pv := patchedProblem(p, variants[vi])
		sol, err := SolveCtxFrom(ctx, pv, warm)
		if err != nil {
			return err
		}
		outs[vi] = sol
		return nil
	}
	if which != nil {
		for _, vi := range which {
			if err := solveOne(vi); err != nil {
				return err
			}
		}
		return nil
	}
	for vi := range variants {
		if outs[vi] != nil {
			continue
		}
		if err := solveOne(vi); err != nil {
			return err
		}
	}
	return nil
}

// patchedProblem returns a shallow variant of p with patched row RHS
// values. Rows are copied at the slice level; Terms, names and obj are
// shared read-only with the base problem.
func patchedProblem(p *Problem, patches []RHSPatch) *Problem {
	rows := make([]Constraint, len(p.rows))
	copy(rows, p.rows)
	for _, pc := range patches {
		rows[pc.Row].RHS = pc.RHS
	}
	return &Problem{names: p.names, obj: p.obj, rows: rows}
}
