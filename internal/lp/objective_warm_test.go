// Warm-start behaviour under objective-only edits: the schedule
// objectives (min-phase-width at a fixed Tc) reuse the min-Tc
// constraint system with a different cost vector, so a basis from the
// min-Tc solve is primal feasible for the re-solve and phase 2 should
// finish in a handful of pivots. When the RHS moved too and the old
// basis is no longer dual feasible for the NEW costs, the warm path
// must abandon the basis and fall back to a cold solve silently.
package lp_test

import (
	"context"
	"math"
	"testing"

	"mintc/internal/circuits"
	"mintc/internal/core"
	"mintc/internal/lp"
)

const gaasFixedTc = 5 // above the GaAs optimum 4.4, so the pin is feasible

// buildGaAsObj returns the GaAs MIPS LP at the pinned cycle time under
// the given objective, with path 0 scaled by f.
func buildGaAsObj(t *testing.T, f float64, obj core.Objective) (*lp.Problem, *core.VarMap) {
	t.Helper()
	c := circuits.GaAsMIPS()
	if f != 1 {
		c.SetPathDelay(0, c.Paths()[0].Delay*f)
	}
	opts := core.Options{Objective: obj}
	if obj.IsMinTc() {
		opts.FixedTc = gaasFixedTc
	}
	p, vm, _ := core.BuildLP(c, opts)
	return p, vm
}

// TestWarmObjectiveOnlyEdit pins the objective-edit warm start: after
// re-costing the min-Tc-at-fixed-Tc LP to minimize total phase width
// (same rows, same RHS, new objective), the old optimal basis is
// primal feasible and the warm re-solve must report WarmStarted, agree
// with the cold solve, and spend far fewer pivots.
func TestWarmObjectiveOnlyEdit(t *testing.T) {
	ctx := context.Background()
	base, _ := buildGaAsObj(t, 1, core.Objective{})
	first, err := lp.SolveCtx(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != lp.Optimal {
		t.Fatalf("status %v", first.Status)
	}
	basis := first.Basis()
	if basis == nil {
		t.Fatal("optimal solve returned nil basis")
	}

	width, _ := buildGaAsObj(t, 1, core.MinPhaseWidthAt(gaasFixedTc))
	if base.NumVars() != width.NumVars() || base.NumConstraints() != width.NumConstraints() {
		t.Fatalf("objective edit changed the LP shape: %dx%d vs %dx%d",
			base.NumConstraints(), base.NumVars(), width.NumConstraints(), width.NumVars())
	}
	cold, err := lp.SolveCtx(ctx, width)
	if err != nil {
		t.Fatal(err)
	}
	reWidth, _ := buildGaAsObj(t, 1, core.MinPhaseWidthAt(gaasFixedTc))
	warm, err := lp.SolveCtxFrom(ctx, reWidth, basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != lp.Optimal {
		t.Fatalf("warm status %v", warm.Status)
	}
	if !warm.Stats.WarmStarted {
		t.Fatal("objective-only edit did not warm-start")
	}
	if math.Abs(warm.Obj-cold.Obj) > 1e-9 {
		t.Fatalf("warm optimum %v != cold optimum %v", warm.Obj, cold.Obj)
	}
	if warm.Pivots > cold.Pivots/2 {
		t.Fatalf("warm solve used %d pivots, cold used %d — the basis was not exploited", warm.Pivots, cold.Pivots)
	}
	t.Logf("objective-only edit: cold %d pivots, warm %d", cold.Pivots, warm.Pivots)
}

// TestSetObjCoefMatchesObjectiveBuild pins the re-costing API itself:
// ClearObjective + SetObjCoef on the min-Tc problem must reproduce the
// cost vector of a fresh min-phase-width build exactly, and the warm
// re-solve of the hand-edited problem must reach the same optimum.
func TestSetObjCoefMatchesObjectiveBuild(t *testing.T) {
	ctx := context.Background()
	edited, vm := buildGaAsObj(t, 1, core.Objective{})
	first, err := lp.SolveCtx(ctx, edited)
	if err != nil {
		t.Fatal(err)
	}
	basis := first.Basis()

	// Re-cost in place: min Tc -> min sum(T).
	edited.ClearObjective()
	for _, v := range vm.T {
		edited.SetObjCoef(v, 1)
	}
	want, _ := buildGaAsObj(t, 1, core.MinPhaseWidthAt(gaasFixedTc))
	for v := 0; v < want.NumVars(); v++ {
		if math.Float64bits(edited.ObjCoef(v)) != math.Float64bits(want.ObjCoef(v)) {
			t.Fatalf("ObjCoef(%d) = %v after SetObjCoef, objective build has %v",
				v, edited.ObjCoef(v), want.ObjCoef(v))
		}
	}

	warm, err := lp.SolveCtxFrom(ctx, edited, basis)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := lp.SolveCtx(ctx, want)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != lp.Optimal || math.Abs(warm.Obj-cold.Obj) > 1e-9 {
		t.Fatalf("re-costed warm solve: status %v obj %v, want optimal obj %v", warm.Status, warm.Obj, cold.Obj)
	}
}

// TestWarmObjectiveAndRHSEdit pins the safety side: when the RHS moved
// (a delay grew 50%) AND the costs changed, the old basis is primal
// infeasible and generally not dual feasible for the new costs, so the
// warm path must either repair it or abandon it for a cold solve — and
// in every case end at the true optimum of the edited program.
func TestWarmObjectiveAndRHSEdit(t *testing.T) {
	ctx := context.Background()
	base, _ := buildGaAsObj(t, 1, core.Objective{})
	first, err := lp.SolveCtx(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	basis := first.Basis()

	edited, _ := buildGaAsObj(t, 1.5, core.MinPhaseWidthAt(gaasFixedTc))
	cold, err := lp.SolveCtx(ctx, edited)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != lp.Optimal {
		t.Fatalf("cold status %v", cold.Status)
	}
	reEdited, _ := buildGaAsObj(t, 1.5, core.MinPhaseWidthAt(gaasFixedTc))
	warm, err := lp.SolveCtxFrom(ctx, reEdited, basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != lp.Optimal {
		t.Fatalf("warm status %v", warm.Status)
	}
	if math.Abs(warm.Obj-cold.Obj) > 1e-9 {
		t.Fatalf("warm optimum %v != cold optimum %v after objective+RHS edit", warm.Obj, cold.Obj)
	}
	t.Logf("objective+RHS edit: warm-started=%v, cold %d pivots, warm %d",
		warm.Stats.WarmStarted, cold.Pivots, warm.Pivots)
}

// TestWarmShapeMismatchFallsBackCold pins the documented contract that
// a basis of the wrong shape is silently discarded: the max-margin
// build adds one aux variable, so a min-Tc basis cannot seed it and
// the solve must cold-start yet stay correct.
func TestWarmShapeMismatchFallsBackCold(t *testing.T) {
	ctx := context.Background()
	base, _ := buildGaAsObj(t, 1, core.Objective{})
	first, err := lp.SolveCtx(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	basis := first.Basis()

	margin, _ := buildGaAsObj(t, 1, core.MaxMarginAt(gaasFixedTc))
	if margin.NumVars() != base.NumVars()+1 {
		t.Fatalf("max-margin build has %d vars, want %d (one aux)", margin.NumVars(), base.NumVars()+1)
	}
	warm, err := lp.SolveCtxFrom(ctx, margin, basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != lp.Optimal {
		t.Fatalf("status %v", warm.Status)
	}
	if warm.Stats.WarmStarted {
		t.Fatal("a shape-mismatched basis must not warm-start")
	}
	cold, err := lp.SolveCtx(ctx, margin)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Obj-cold.Obj) > 1e-9 {
		t.Fatalf("fallback optimum %v != cold optimum %v", warm.Obj, cold.Obj)
	}
}
