//go:build noscratch

package lp

// noscratch build: every solve gets a fresh arena and nothing is
// recycled, giving a differential baseline for the pooled paths'
// bit-identity contract.

// poolEnabled reports the build flavor to differential tests.
const poolEnabled = false

func getArena() *arena {
	return new(arena)
}

func (a *arena) release() {}
