package lp

import (
	"math"

	"mintc/internal/faultinject"
)

// The eta file holds one product-form update per pivot: after a pivot
// at basis position pos with transformed entering column w, the new
// basis inverse is E^-1 B^-1 where applying E^-1 to a position-indexed
// vector x is
//
//	x[pos] /= diag
//	x[idx[k]] -= vals[k] * x[pos]
//
// and applying its transpose (for BTRAN) is the reverse. Etas are
// stored structure-of-arrays: per-eta scalars in etaPos/etaDiag and
// the off-diagonal entries of all etas concatenated in etaIdx/etaVals,
// delimited by the etaStart prefix offsets (eta i owns
// etaIdx[etaStart[i]:etaStart[i+1]]). One flat layout instead of a
// slice of per-eta structs keeps FTRAN/BTRAN walking contiguous
// memory and lets the whole file recycle through the solve arena
// without per-pivot allocations.

// frame is one explicit-stack entry of the symbolic reach DFS: a row
// plus a cursor into its L column.
type frame struct {
	row int32
	e   int32
}

// basisLU is an invertible representation of the current basis matrix
// B: an LU factorization of the basis at the last refactorization
// point (Gilbert–Peierls left-looking sparse LU with partial pivoting)
// plus a file of eta updates, one per pivot since. FTRAN/BTRAN apply
// the factorization and the eta file without ever forming B^-1.
//
// Index spaces: L and its row indices live in original row space; U is
// indexed by elimination step. p maps step -> pivot row, pinv its
// inverse, q maps step -> basis position. Vectors entering ftran are
// row-indexed; vectors leaving ftran (and entering btran) are basis-
// position-indexed, matching how the simplex uses them.
type basisLU struct {
	m int

	// L: unit lower triangular, stored by column (elimination step);
	// row indices are original rows, diagonal implicit.
	lp []int32
	li []int32
	lx []float64

	// U: upper triangular, stored by column (elimination step); row
	// indices are earlier elimination steps, diagonal separate.
	up []int32
	ui []int32
	ux []float64
	ud []float64

	p    []int32 // step -> pivot row
	pinv []int32 // row -> step
	q    []int32 // step -> basis position

	// Eta file, SoA (see package comment above).
	etaPos   []int32
	etaDiag  []float64
	etaStart []int32 // len nEtas()+1 once any eta exists; prefix offsets
	etaIdx   []int32
	etaVals  []float64
	etaNnz   int
	luNnz    int

	// scratch for factorization and solves
	x       []float64
	visited []int32
	vstamp  int32
	topo    []int32
	fstack  []frame // reach DFS stack
	order   []int32 // factorize: column elimination order
	bcnt    []int32 // factorize: counting-sort buckets
	colIdx  []int32 // factorize: gathered basis column
	colVal  []float64
	zk      []float64

	refactors int64 // refactorization count since construction
}

// nEtas returns the number of eta updates in the file.
func (b *basisLU) nEtas() int { return len(b.etaPos) }

// clearEtas empties the eta file, keeping capacity.
func (b *basisLU) clearEtas() {
	b.etaPos = b.etaPos[:0]
	b.etaDiag = b.etaDiag[:0]
	b.etaStart = b.etaStart[:0]
	b.etaIdx = b.etaIdx[:0]
	b.etaVals = b.etaVals[:0]
	b.etaNnz = 0
}

// factorize rebuilds the LU decomposition of the basis described by
// basis (position -> canonical column id) and clears the eta file.
// Columns are eliminated in ascending-nnz order, a cheap fill-reducing
// heuristic that works well on SMO programs where most basis columns
// are slacks or near-unit structural columns.
func (b *basisLU) factorize(st *store, basis []int32) error {
	if err := faultinject.Fire("lp.factor"); err != nil {
		return err
	}
	m := b.m
	b.lp = append(b.lp[:0], 0)
	b.li = b.li[:0]
	b.lx = b.lx[:0]
	b.up = append(b.up[:0], 0)
	b.ui = b.ui[:0]
	b.ux = b.ux[:0]
	b.ud = b.ud[:0]
	b.clearEtas()
	for i := range b.pinv {
		b.pinv[i] = -1
	}
	// Recycled arenas keep the visited stamps monotone across solves;
	// rewind before the int32 stamp space could wrap.
	if b.vstamp > math.MaxInt32-int32(m)-1 {
		for i := range b.visited {
			b.visited[i] = 0
		}
		b.vstamp = 0
	}

	// Column elimination order: nnz ascending, stable on position
	// (counting sort; nnz is tiny for SMO columns).
	maxNnz := 1
	for _, id := range basis {
		if c := st.colNnz(id); c > maxNnz {
			maxNnz = c
		}
	}
	if cap(b.bcnt) < maxNnz+1 {
		b.bcnt = make([]int32, maxNnz+1)
	}
	bcnt := b.bcnt[:maxNnz+1]
	for i := range bcnt {
		bcnt[i] = 0
	}
	for i := 0; i < m; i++ {
		bcnt[st.colNnz(basis[i])]++
	}
	var off int32
	for c := range bcnt {
		n := bcnt[c]
		bcnt[c] = off
		off += n
	}
	if cap(b.order) < m {
		b.order = make([]int32, m)
	}
	order := b.order[:m]
	for i := 0; i < m; i++ {
		c := st.colNnz(basis[i])
		order[bcnt[c]] = int32(i)
		bcnt[c]++
	}

	for step, jpos := range order {
		b.colIdx, b.colVal = st.appendCol(basis[jpos], b.colIdx[:0], b.colVal[:0])
		colIdx, colVal := b.colIdx, b.colVal

		// Symbolic: reach of the column's rows through finished L
		// columns, in topological order.
		b.vstamp++
		b.topo = b.topo[:0]
		for _, r := range colIdx {
			b.reach(r)
		}

		// Numeric: scatter and eliminate.
		for k, r := range colIdx {
			b.x[r] = colVal[k]
		}
		// topo is reverse post-order: dependencies come later, so walk
		// backwards to apply L columns in increasing step order.
		for t := len(b.topo) - 1; t >= 0; t-- {
			r := b.topo[t]
			k := b.pinv[r]
			if k < 0 {
				continue
			}
			xv := b.x[r]
			if xv == 0 {
				continue
			}
			for e := b.lp[k]; e < b.lp[k+1]; e++ {
				b.x[b.li[e]] -= b.lx[e] * xv
			}
		}

		// Partial pivot among rows not yet pivotal.
		piv := int32(-1)
		var pmax float64
		for _, r := range b.topo {
			if b.pinv[r] >= 0 {
				continue
			}
			if v := math.Abs(b.x[r]); v > pmax {
				pmax = v
				piv = r
			}
		}
		if piv < 0 || pmax < 1e-11 {
			for _, r := range b.topo {
				b.x[r] = 0
			}
			return ErrSingularBasis
		}

		// Emit U column (entries at already-pivotal rows) and L column
		// (entries below the pivot, scaled).
		pv := b.x[piv]
		for _, r := range b.topo {
			xv := b.x[r]
			b.x[r] = 0
			if xv == 0 || r == piv {
				continue
			}
			if k := b.pinv[r]; k >= 0 {
				b.ui = append(b.ui, k)
				b.ux = append(b.ux, xv)
			} else {
				b.li = append(b.li, r)
				b.lx = append(b.lx, xv/pv)
			}
		}
		b.ud = append(b.ud, pv)
		b.lp = append(b.lp, int32(len(b.li)))
		b.up = append(b.up, int32(len(b.ui)))
		k := int32(step)
		b.pinv[piv] = k
		b.p[k] = piv
		b.q[k] = jpos
	}
	b.luNnz = len(b.li) + len(b.ui) + m
	b.refactors++
	return nil
}

// reach runs an iterative DFS from row r through finished L columns,
// marking visited rows and appending them to topo in post-order (so
// topo reversed is a valid elimination order).
func (b *basisLU) reach(r int32) {
	if b.visited[r] == b.vstamp {
		return
	}
	// Each stack frame is a row with an explicit per-row cursor into
	// its L column, emulating recursion.
	stack := b.fstack[:0]
	b.visited[r] = b.vstamp
	stack = append(stack, frame{row: r})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		k := b.pinv[f.row]
		done := true
		if k >= 0 {
			lo, hi := b.lp[k], b.lp[k+1]
			for e := lo + f.e; e < hi; e++ {
				child := b.li[e]
				if b.visited[child] != b.vstamp {
					b.visited[child] = b.vstamp
					f.e = e - lo + 1
					stack = append(stack, frame{row: child})
					done = false
					break
				}
			}
		}
		if done {
			b.topo = append(b.topo, f.row)
			stack = stack[:len(stack)-1]
		}
	}
	b.fstack = stack[:0]
}

// ftran solves B w = v. v is dense and row-indexed; the result is
// dense and basis-position-indexed, written into out (len m). v is
// left zeroed for reuse as scratch.
func (b *basisLU) ftran(v, out []float64) {
	m := b.m
	// L solve in row space: for each step ascending, propagate the
	// pivot row's value down its L column.
	for k := 0; k < m; k++ {
		xv := v[b.p[k]]
		if xv == 0 {
			continue
		}
		for e := b.lp[k]; e < b.lp[k+1]; e++ {
			v[b.li[e]] -= b.lx[e] * xv
		}
	}
	// U solve backward; result lands at basis positions via q.
	for k := m - 1; k >= 0; k-- {
		r := b.p[k]
		zk := v[r] / b.ud[k]
		v[r] = 0
		b.zk[k] = zk
		if zk == 0 {
			continue
		}
		for e := b.up[k]; e < b.up[k+1]; e++ {
			v[b.p[b.ui[e]]] -= b.ux[e] * zk
		}
	}
	for k := 0; k < m; k++ {
		out[b.q[k]] = b.zk[k]
	}
	// Eta file, oldest first.
	for i := 0; i < len(b.etaPos); i++ {
		pos := b.etaPos[i]
		xr := out[pos] / b.etaDiag[i]
		out[pos] = xr
		if xr == 0 {
			continue
		}
		for j := b.etaStart[i]; j < b.etaStart[i+1]; j++ {
			out[b.etaIdx[j]] -= b.etaVals[j] * xr
		}
	}
}

// ftranN solves B w_j = v_j for each of the k dense row-indexed
// vectors in vs, writing position-indexed results into outs; zs
// supplies one m-length scratch vector per RHS. Per-vector arithmetic
// is performed in exactly the order ftran would use, so each result is
// bit-identical to a standalone ftran of the same vector — the win is
// one pass over the L/U/eta index structure shared by all k vectors
// instead of k passes. Every v_j is left zeroed for reuse.
func (b *basisLU) ftranN(vs, outs, zs [][]float64) {
	m, n := b.m, len(vs)
	for k := 0; k < m; k++ {
		p := b.p[k]
		lo, hi := b.lp[k], b.lp[k+1]
		for j := 0; j < n; j++ {
			v := vs[j]
			xv := v[p]
			if xv == 0 {
				continue
			}
			for e := lo; e < hi; e++ {
				v[b.li[e]] -= b.lx[e] * xv
			}
		}
	}
	for k := m - 1; k >= 0; k-- {
		r := b.p[k]
		lo, hi := b.up[k], b.up[k+1]
		for j := 0; j < n; j++ {
			v := vs[j]
			zk := v[r] / b.ud[k]
			v[r] = 0
			zs[j][k] = zk
			if zk == 0 {
				continue
			}
			for e := lo; e < hi; e++ {
				v[b.p[b.ui[e]]] -= b.ux[e] * zk
			}
		}
	}
	for j := 0; j < n; j++ {
		out, z := outs[j], zs[j]
		for k := 0; k < m; k++ {
			out[b.q[k]] = z[k]
		}
	}
	for i := 0; i < len(b.etaPos); i++ {
		pos := b.etaPos[i]
		lo, hi := b.etaStart[i], b.etaStart[i+1]
		for j := 0; j < n; j++ {
			out := outs[j]
			xr := out[pos] / b.etaDiag[i]
			out[pos] = xr
			if xr == 0 {
				continue
			}
			for e := lo; e < hi; e++ {
				out[b.etaIdx[e]] -= b.etaVals[e] * xr
			}
		}
	}
}

// btran solves B^T y = c. c is dense and basis-position-indexed and is
// consumed as scratch; the result is dense and row-indexed, written
// into out (len m, fully overwritten).
func (b *basisLU) btran(c, out []float64) {
	m := b.m
	// Eta transposes, newest first.
	for i := len(b.etaPos) - 1; i >= 0; i-- {
		pos := b.etaPos[i]
		acc := c[pos]
		for j := b.etaStart[i]; j < b.etaStart[i+1]; j++ {
			acc -= b.etaVals[j] * c[b.etaIdx[j]]
		}
		c[pos] = acc / b.etaDiag[i]
	}
	// U^T solve forward over steps (entries reference earlier steps).
	for k := 0; k < m; k++ {
		acc := c[b.q[k]]
		for e := b.up[k]; e < b.up[k+1]; e++ {
			acc -= b.ux[e] * b.zk[b.ui[e]]
		}
		b.zk[k] = acc / b.ud[k]
	}
	// L^T solve backward: s_k = z_k - sum over L column k of
	// lx * s_{pinv(row)} where every referenced step is later.
	for k := m - 1; k >= 0; k-- {
		acc := b.zk[k]
		for e := b.lp[k]; e < b.lp[k+1]; e++ {
			acc -= b.lx[e] * b.zk[b.pinv[b.li[e]]]
		}
		b.zk[k] = acc
		out[b.p[k]] = acc
	}
	for i := range c {
		c[i] = 0
	}
}

// update appends a product-form eta for a pivot at basis position pos
// whose transformed entering column (B^-1 A_q, position-indexed) is w.
// w is not retained.
func (b *basisLU) update(pos int32, w []float64) {
	if len(b.etaStart) == 0 {
		b.etaStart = append(b.etaStart, 0)
	}
	start := len(b.etaIdx)
	for i, v := range w {
		if int32(i) == pos {
			continue
		}
		if math.Abs(v) > 1e-12 {
			b.etaIdx = append(b.etaIdx, int32(i))
			b.etaVals = append(b.etaVals, v)
		}
	}
	b.etaPos = append(b.etaPos, pos)
	b.etaDiag = append(b.etaDiag, w[pos])
	b.etaStart = append(b.etaStart, int32(len(b.etaIdx)))
	b.etaNnz += len(b.etaIdx) - start
}

// needRefactor reports whether the eta file has grown past the point
// where refactorizing is cheaper (and more accurate) than applying it.
func (b *basisLU) needRefactor() bool {
	if b.nEtas() >= 64 {
		return true
	}
	return b.etaNnz > 2*(b.luNnz+b.m)
}
