// Package lp implements two-phase simplex solvers for linear programs
// of the form
//
//	minimize    c·x
//	subject to  a_i·x  {<=, =, >=}  b_i     i = 1..m
//	            x >= 0
//
// which is exactly the shape of the SMO optimal-cycle-time program P2:
// all timing variables (Tc, s_i, T_i, D_i) are nonnegative and every
// constraint is a linear inequality. The solvers provide primal values,
// dual values (clock-constraint "prices"), slacks (the critical-segment
// indicators of the paper's §V discussion), pivot counts (to check the
// paper's n..3n simplex-steps claim), and simple RHS ranging for the
// parametric analysis the paper proposes as future work.
//
// Two implementations share every convention (tolerances, pricing
// rules, duals, ranging):
//
//   - The default solver behind Solve/SolveCtx is a sparse revised
//     simplex (sparse.go, basis.go, revised.go): a CSC column store, an
//     LU-factorized basis with eta-file updates, FTRAN/BTRAN kernels,
//     and candidate-list partial pricing. Its cost scales with the
//     nonzero count, which for P2 (≤ ~4 entries per row) is linear in
//     the circuit size. It also supports warm-started re-solves from a
//     previous optimal basis (warmstart.go).
//
//   - SolveDense/SolveDenseCtx keep the original dense two-phase
//     tableau as the differential-testing oracle.
//
// Both use Dantzig pricing with an automatic switch to Bland's rule
// when degeneracy stalls progress, guaranteeing termination.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"mintc/internal/faultinject"
)

// Rel is the relation of a constraint row.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // a·x <= b
	GE            // a·x >= b
	EQ            // a·x == b
)

// String returns the conventional symbol for the relation.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Term is one coefficient of a sparse constraint row or objective.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is one row of the program. Rows are stored sparsely; a
// variable absent from Terms has coefficient zero.
type Constraint struct {
	Name  string
	Terms []Term
	Rel   Rel
	RHS   float64
}

// Problem is a linear program under construction. The zero value is an
// empty problem; add variables before referencing them in constraints.
type Problem struct {
	names []string
	obj   []float64
	rows  []Constraint
}

// AddVar adds a nonnegative variable with the given name and objective
// coefficient, returning its index.
func (p *Problem) AddVar(name string, objCoef float64) int {
	p.names = append(p.names, name)
	p.obj = append(p.obj, objCoef)
	return len(p.names) - 1
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.names) }

// SetObjCoef overrides variable v's objective coefficient (used to
// re-solve the same constraint system under a secondary objective).
func (p *Problem) SetObjCoef(v int, coef float64) {
	if v < 0 || v >= len(p.obj) {
		panic(fmt.Sprintf("lp: SetObjCoef variable %d out of range", v))
	}
	p.obj[v] = coef
}

// ClearObjective zeroes every objective coefficient.
func (p *Problem) ClearObjective() {
	for i := range p.obj {
		p.obj[i] = 0
	}
}

// NumConstraints returns the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// ObjCoef returns variable v's objective coefficient.
func (p *Problem) ObjCoef(v int) float64 { return p.obj[v] }

// VarName returns the name of variable v.
func (p *Problem) VarName(v int) string { return p.names[v] }

// ConstraintName returns the name of row i.
func (p *Problem) ConstraintName(i int) string { return p.rows[i].Name }

// Constraint returns row i.
func (p *Problem) Constraint(i int) Constraint { return p.rows[i] }

// AddConstraint adds the row "sum(terms) rel rhs" and returns its index.
// Terms may repeat a variable; coefficients accumulate.
func (p *Problem) AddConstraint(name string, terms []Term, rel Rel, rhs float64) int {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.names) {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", name, t.Var))
		}
	}
	ts := make([]Term, len(terms))
	copy(ts, terms)
	p.rows = append(p.rows, Constraint{Name: name, Terms: ts, Rel: rel, RHS: rhs})
	return len(p.rows) - 1
}

// String renders the program in a human-readable form (for debugging
// and for the smoclk -dump flag).
func (p *Problem) String() string {
	var b strings.Builder
	b.WriteString("minimize ")
	first := true
	for j, c := range p.obj {
		if c == 0 {
			continue
		}
		writeTerm(&b, &first, c, p.names[j])
	}
	if first {
		b.WriteString("0")
	}
	b.WriteString("\nsubject to\n")
	for _, r := range p.rows {
		b.WriteString("  ")
		if r.Name != "" {
			fmt.Fprintf(&b, "[%s] ", r.Name)
		}
		first := true
		for _, t := range r.Terms {
			if t.Coef == 0 {
				continue
			}
			writeTerm(&b, &first, t.Coef, p.names[t.Var])
		}
		if first {
			b.WriteString("0")
		}
		fmt.Fprintf(&b, " %s %g\n", r.Rel, r.RHS)
	}
	b.WriteString("  x >= 0\n")
	return b.String()
}

func writeTerm(b *strings.Builder, first *bool, c float64, name string) {
	switch {
	case *first && c == 1:
		b.WriteString(name)
	case *first && c == -1:
		b.WriteString("-" + name)
	case *first:
		fmt.Fprintf(b, "%g*%s", c, name)
	case c == 1:
		b.WriteString(" + " + name)
	case c == -1:
		b.WriteString(" - " + name)
	case c < 0:
		fmt.Fprintf(b, " - %g*%s", -c, name)
	default:
		fmt.Fprintf(b, " + %g*%s", c, name)
	}
	*first = false
}

// Status classifies the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// Obj is the optimal objective value (minimization).
	Obj float64
	// X holds the optimal variable values, indexed like the problem's
	// variables.
	X []float64
	// Dual holds one dual value per original constraint. For a
	// minimization problem the dual of a binding <= row is <= 0 and of
	// a binding >= row is >= 0 under the usual convention y·(a·x-b);
	// here we report y such that d(Obj)/d(b_i) = Dual[i].
	Dual []float64
	// Slack holds b_i - a_i·x for <= rows and a_i·x - b_i for >= rows
	// (always >= 0 at optimum up to tolerance); 0 marks a binding
	// ("critical") constraint.
	Slack []float64
	// Pivots counts simplex pivot operations across both phases.
	Pivots int
	// RHSRange[i] is the closed interval of values for constraint i's
	// RHS over which the final basis stays optimal; within it the
	// objective changes at rate Dual[i] per unit of RHS. This is the
	// classic RHS ranging used for the paper's proposed parametric
	// (critical-segment) analysis. Bounds may be ±Inf.
	RHSRange [][2]float64
	// Stats describes the work the solve performed (revised solver
	// only; the dense oracle leaves it zero). The lp package is a
	// generic substrate with no observability dependencies, so callers
	// that keep counters translate these fields themselves.
	Stats SolveStats
	// FarkasRay, populated when Status is Infeasible, is a certificate
	// of infeasibility in the original row space: a vector y with
	// y_i <= 0 on LE rows, y_i >= 0 on GE rows (free on EQ), such that
	// Σ_i y_i·a_ij <= 0 for every variable j while Σ_i y_i·b_i > 0.
	// Any x >= 0 satisfying the rows would give the contradiction
	// 0 >= y·Ax = Σ_j x_j (y·A_j) and y·Ax R y·b with positive slack —
	// so the rows are unsatisfiable. The ray comes from phase-1 duals
	// (cold solves) or the failing dual-simplex row (warm solves) and
	// is exact only up to solver tolerances; independent validation
	// lives in internal/verify. Nil when no certificate was extracted.
	FarkasRay []float64

	// basis is the optimal basis in the canonical column encoding (see
	// Basis); nil on non-optimal outcomes.
	basis []int32
}

// SolveStats is the work profile of one revised-simplex solve: sparse
// problem size, factorization effort, warm-start attribution and the
// assemble/factor/pivot wall-clock split. Populated on success and on
// partial (cancelled / iteration-limited) solutions alike.
type SolveStats struct {
	// Nnz is the structural nonzero count of the assembled column store.
	Nnz int
	// Refactorizations counts basis LU (re)factorizations, including
	// the initial one and the final accuracy refactorization.
	Refactorizations int
	// WarmStarted reports that the solve proceeded from a supplied
	// basis instead of running phase 1.
	WarmStarted bool
	// WarmPivots is the pivot count of a warm-started solve (equal to
	// Solution.Pivots when WarmStarted, 0 otherwise).
	WarmPivots int
	// AssembleTime, FactorTime and PivotTime split the solve wall
	// clock: CSC assembly, LU factorization work, and everything else
	// (pricing, FTRAN/BTRAN, ratio tests, extraction).
	AssembleTime time.Duration
	FactorTime   time.Duration
	PivotTime    time.Duration
	// ScratchReused reports that the solve ran on a recycled scratch
	// arena instead of freshly allocated working memory (always false
	// under -tags noscratch).
	ScratchReused bool
	// ScratchGrows counts scratch buffers that had to be (re)grown
	// during the solve — zero at steady state, when every buffer
	// already fits the problem shape.
	ScratchGrows int
}

// Errors returned by Solve.
var (
	ErrIterationLimit = errors.New("lp: iteration limit exceeded")
	// ErrSingularBasis reports a basis matrix the LU factorization
	// could not invert. It surfaces wrapped in refactorization errors
	// ("lp: basis refactorization failed: ...") when the eta file must
	// be rebuilt mid-solve; match it with errors.Is.
	ErrSingularBasis = errors.New("lp: singular basis")
)

// useDense routes Solve/SolveCtx (and SolveCtxFrom) to the dense
// oracle instead of the revised simplex. Off by default; flipped by
// SetDefaultSolver for baseline benchmark sweeps and differential
// debugging.
var useDense atomic.Bool

// SetDefaultSolver selects the solver behind Solve/SolveCtx:
// "revised" (the default sparse revised simplex) or "dense" (the
// two-phase tableau oracle). It affects the whole process and is meant
// for benchmark harnesses and debugging, not for concurrent toggling
// mid-solve.
func SetDefaultSolver(name string) error {
	switch name {
	case "", "revised":
		useDense.Store(false)
	case "dense":
		useDense.Store(true)
	default:
		return fmt.Errorf("lp: unknown solver %q (have \"revised\", \"dense\")", name)
	}
	return nil
}

// solverKey carries a per-solve solver override in a context.
type solverKey struct{}

// WithSolver returns a context that forces SolveCtx/SolveCtxFrom under
// it to use the named solver ("revised" or "dense"), overriding the
// process-global SetDefaultSolver knob for that solve only. The engine
// supervisor uses it to pin individual degradation-ladder rungs to a
// specific solver without racing concurrent solves on the global
// atomic. Unknown names are ignored (the context passes through
// unchanged), keeping the call total for plumbing code.
func WithSolver(ctx context.Context, name string) context.Context {
	switch name {
	case "revised", "dense":
		return context.WithValue(ctx, solverKey{}, name)
	}
	return ctx
}

// wantDense resolves the solver choice for one solve: a WithSolver
// override wins, otherwise the process-global knob decides.
func wantDense(ctx context.Context) bool {
	if name, ok := ctx.Value(solverKey{}).(string); ok {
		return name == "dense"
	}
	return useDense.Load()
}

const (
	eps      = 1e-9
	ratioEps = 1e-9
	zeroSnap = 1e-11
	// defaultIt is the iteration-cap floor; the effective cap scales
	// with problem size (see iterLimit) so large programs are not
	// truncated by a constant while small degenerate ones still stop.
	defaultIt = 200000
	// iterPerSize is the per-(row+column) iteration allowance above the
	// floor. Simplex visits O(m+n) bases in practice (the paper's n..3n
	// claim); 100·(m+n) flags pathology without biting real solves.
	iterPerSize = 100
)

// iterLimit returns the pivot-iteration cap for an m×n program:
// max(defaultIt, iterPerSize·(m+n)).
func iterLimit(m, n int) int {
	if it := iterPerSize * (m + n); it > defaultIt {
		return it
	}
	return defaultIt
}

// iterLimitError wraps ErrIterationLimit with the diagnosable context
// (phase, pivot count, problem size) so truncated solves can be read
// straight out of smobench output.
func iterLimitError(phase, pivots, m, n int) error {
	return fmt.Errorf("%w: phase %d stopped after %d pivots (m=%d n=%d cap=%d)",
		ErrIterationLimit, phase, pivots, m, n, iterLimit(m, n))
}

// Solve solves the problem with the default solver (the sparse revised
// simplex). Infeasible and unbounded outcomes are reported in
// Solution.Status with a nil error; the error is reserved for solver
// failures (e.g. iteration limit).
func Solve(p *Problem) (*Solution, error) {
	return SolveCtx(context.Background(), p)
}

// SolveCtx is Solve with cancellation: the context is checked while
// the problem is assembled and on every pivot iteration, so deadlines
// are honored even on large programs. On cancellation it returns the
// context's error together with a partial Solution carrying the pivot
// count reached so far (for progress accounting); the partial solution
// has no variable values.
//
// The default solver is the sparse revised simplex; SetDefaultSolver
// reroutes it (smobench's dense-baseline sweeps), and SolveDenseCtx
// always runs the dense oracle.
func SolveCtx(ctx context.Context, p *Problem) (*Solution, error) {
	if wantDense(ctx) {
		return SolveDenseCtx(ctx, p)
	}
	if sol, done := solveTrivial(p); done {
		return sol, nil
	}
	return solveRevised(ctx, p, nil)
}

// SolveDense solves the problem with the dense two-phase tableau — the
// differential-testing oracle for the revised solver.
func SolveDense(p *Problem) (*Solution, error) {
	return SolveDenseCtx(context.Background(), p)
}

// solveTrivial handles zero-variable programs (feasibility of constant
// rows), shared by both solvers. done reports whether sol is final.
func solveTrivial(p *Problem) (*Solution, bool) {
	if len(p.names) > 0 {
		return nil, false
	}
	m := len(p.rows)
	for i, r := range p.rows {
		if !constRowFeasible(r) {
			// A violated constant row is its own Farkas ray: the unit
			// vector on that row, signed by its relation.
			ray := make([]float64, m)
			switch {
			case r.Rel == LE:
				ray[i] = -1
			case r.Rel == GE:
				ray[i] = 1
			case r.RHS > 0:
				ray[i] = 1
			default:
				ray[i] = -1
			}
			return &Solution{Status: Infeasible, X: nil, Dual: make([]float64, m), Slack: make([]float64, m), FarkasRay: ray}, true
		}
	}
	return &Solution{Status: Optimal, X: nil, Dual: make([]float64, m), Slack: rowSlacks(p, nil)}, true
}

// SolveDenseCtx is SolveDense with cancellation (see SolveCtx).
func SolveDenseCtx(ctx context.Context, p *Problem) (*Solution, error) {
	if sol, done := solveTrivial(p); done {
		return sol, nil
	}
	t, err := newTableau(ctx, p)
	if err != nil {
		return &Solution{}, err
	}
	// Phase 1: minimize sum of artificials.
	if t.numArt > 0 {
		t.setPhase1Objective()
		if err := t.iterate(ctx, 1); err != nil {
			return &Solution{Pivots: t.pivots}, err
		}
		if t.objValue() > 1e-7*(1+t.scale) {
			return &Solution{Status: Infeasible, Pivots: t.pivots, FarkasRay: t.farkasRay()}, nil
		}
		if err := t.driveOutArtificials(ctx); err != nil {
			return &Solution{Pivots: t.pivots}, err
		}
	}
	// Phase 2: real objective.
	t.setPhase2Objective(p.obj)
	if err := t.iterate(ctx, 2); err != nil {
		return &Solution{Pivots: t.pivots}, err
	}
	if t.unbounded {
		return &Solution{Status: Unbounded, Pivots: t.pivots}, nil
	}
	return t.extract(p), nil
}

// constRowFeasible checks a row in a zero-variable problem, where the
// LHS is identically zero.
func constRowFeasible(r Constraint) bool {
	const lhs = 0.0
	switch r.Rel {
	case LE:
		return lhs <= r.RHS+eps
	case GE:
		return lhs >= r.RHS-eps
	default:
		return math.Abs(lhs-r.RHS) <= eps
	}
}

func rowSlacks(p *Problem, x []float64) []float64 {
	s := make([]float64, len(p.rows))
	for i, r := range p.rows {
		var lhs float64
		for _, t := range r.Terms {
			if x != nil {
				lhs += t.Coef * x[t.Var]
			}
		}
		switch r.Rel {
		case LE:
			s[i] = r.RHS - lhs
		case GE:
			s[i] = lhs - r.RHS
		default:
			s[i] = 0
		}
	}
	return s
}

// tableau is the dense simplex tableau. Columns are laid out as
// [structural | slack/surplus | artificial], then the RHS column.
// Row layout is [constraint rows | objective row].
type tableau struct {
	m, n     int // constraints, structural variables
	ncols    int // total variable columns
	numArt   int
	a        [][]float64 // (m+1) x (ncols+1)
	basis    []int       // basis[i] = column basic in row i
	artCol0  int         // first artificial column
	slackCol []int       // per row: slack/surplus column or -1
	artCol   []int       // per row: artificial column or -1
	colRow   []int       // per slack/artificial column: owning row (canonical basis encoding)
	rowSign  []float64   // +1 if row kept its sign, -1 if multiplied by -1
	scale    float64     // magnitude scale of the problem for tolerances
	// colTol holds the per-column optimality tolerance: global scale
	// tolerances misjudge problems with wide dynamic range (e.g.
	// Klee–Minty cubes), so reduced costs are compared against the
	// magnitude of their own column.
	colTol []float64

	unbounded bool
	pivots    int
}

// newTableau assembles the dense tableau. Construction of large
// programs allocates and fills hundreds of megabytes, so the context
// is polled every few rows to keep cancellation prompt.
func newTableau(ctx context.Context, p *Problem) (*tableau, error) {
	m := len(p.rows)
	n := len(p.names)

	// One slack/surplus column per inequality plus one artificial per
	// row that starts without a basic slack (GE/EQ after RHS
	// normalization). Artificials are allocated exactly — a dense zero
	// column would still be swept by every pivot, and driven-out
	// artificials must never re-enter pricing, so the artificial block
	// holds only live columns and pricing simply stops at artCol0.
	numSlack, numArt := 0, 0
	for _, r := range p.rows {
		if r.Rel != EQ {
			numSlack++
		}
		rel := r.Rel
		if r.RHS < 0 { // row will be flipped during assembly
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		if rel != LE {
			numArt++
		}
	}

	t := &tableau{
		m:        m,
		n:        n,
		ncols:    n + numSlack + numArt,
		artCol0:  n + numSlack,
		basis:    make([]int, m),
		slackCol: make([]int, m),
		artCol:   make([]int, m),
		colRow:   make([]int, numSlack+numArt),
		rowSign:  make([]float64, m),
	}
	t.a = make([][]float64, m+1)
	for i := range t.a {
		if i&127 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		t.a[i] = make([]float64, t.ncols+1)
	}

	slackNext := n
	artUsed := 0
	var scale float64 = 1
	for i, r := range p.rows {
		if i&127 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := t.a[i]
		for _, term := range r.Terms {
			row[term.Var] += term.Coef
			if c := math.Abs(term.Coef); c > scale {
				scale = c
			}
		}
		rhs := r.RHS
		if math.Abs(rhs) > scale {
			scale = math.Abs(rhs)
		}
		rel := r.Rel
		sign := 1.0
		if rhs < 0 {
			// Flip the row so RHS >= 0.
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
			rhs = -rhs
			sign = -1
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		t.rowSign[i] = sign
		row[t.ncols] = rhs

		t.slackCol[i] = -1
		t.artCol[i] = -1
		switch rel {
		case LE:
			row[slackNext] = 1
			t.slackCol[i] = slackNext
			t.colRow[slackNext-n] = i
			t.basis[i] = slackNext
			slackNext++
		case GE:
			row[slackNext] = -1
			t.slackCol[i] = slackNext
			t.colRow[slackNext-n] = i
			slackNext++
			ac := t.artCol0 + artUsed
			row[ac] = 1
			t.artCol[i] = ac
			t.colRow[ac-n] = i
			t.basis[i] = ac
			artUsed++
		case EQ:
			ac := t.artCol0 + artUsed
			row[ac] = 1
			t.artCol[i] = ac
			t.colRow[ac-n] = i
			t.basis[i] = ac
			artUsed++
		}
	}
	t.numArt = artUsed
	t.scale = scale

	// Per-column tolerances from the original column magnitudes
	// (structural columns) and unity for slack/artificial columns.
	t.colTol = make([]float64, t.ncols)
	for j := range t.colTol {
		t.colTol[j] = eps
	}
	for j := 0; j < n; j++ {
		if j&127 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		m := 1.0
		for i := 0; i < t.m; i++ {
			if v := math.Abs(t.a[i][j]); v > m {
				m = v
			}
		}
		if v := math.Abs(p.obj[j]); v > m {
			m = v
		}
		t.colTol[j] = eps * m
	}
	return t, nil
}

// setPhase1Objective loads the objective "minimize sum of artificials",
// priced out so basic columns have zero reduced cost.
func (t *tableau) setPhase1Objective() {
	obj := t.a[t.m]
	for j := range obj {
		obj[j] = 0
	}
	for j := t.artCol0; j < t.artCol0+t.numArt; j++ {
		obj[j] = 1
	}
	// Price out: subtract rows whose basic variable has cost 1.
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artCol0 {
			for j := 0; j <= t.ncols; j++ {
				obj[j] -= t.a[i][j]
			}
		}
	}
}

// setPhase2Objective loads the real objective for the structural
// variables and prices out the current basis.
func (t *tableau) setPhase2Objective(c []float64) {
	obj := t.a[t.m]
	for j := range obj {
		obj[j] = 0
	}
	for j, cj := range c {
		obj[j] = cj
	}
	for i := 0; i < t.m; i++ {
		b := t.basis[i]
		cb := 0.0
		if b < t.n {
			cb = c[b]
		}
		if cb != 0 {
			for j := 0; j <= t.ncols; j++ {
				obj[j] -= cb * t.a[i][j]
			}
		}
	}
}

// objValue returns the current objective value (phase convention:
// tableau stores -z in the RHS cell of the objective row).
func (t *tableau) objValue() float64 {
	return -t.a[t.m][t.ncols]
}

// iterate runs simplex pivots until optimality, unboundedness or the
// iteration limit. Dantzig pricing; switches to Bland's rule if the
// objective stalls for longer than a degeneracy window. The context is
// polled once per iteration (one pivot is the natural cancellation
// granularity: pricing, ratio test and the pivot itself are a single
// O(m·n) unit of work).
//
// Pricing stops at artCol0: artificial columns are excluded from
// entering permanently by layout (the block holds only the artificials
// that were actually created, and they may only be basic leftovers),
// so no per-column eligibility predicate runs inside the loop.
func (t *tableau) iterate(ctx context.Context, phase int) error {
	tol := eps * (1 + t.scale)
	bland := false
	stall := 0
	lastObj := t.objValue()
	window := 4 * (t.m + t.ncols)

	limit := iterLimit(t.m, t.n)
	for iter := 0; iter < limit; iter++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := faultinject.Fire("lp.dense.iterate"); err != nil {
			return err
		}
		obj := t.a[t.m]
		// Choose entering column; each reduced cost is judged against
		// its own column's magnitude so wide dynamic ranges don't
		// cause premature optimality.
		enter := -1
		if bland {
			for j := 0; j < t.artCol0; j++ {
				if obj[j] < -t.colTol[j] {
					enter = j
					break
				}
			}
		} else {
			best := 0.0
			for j := 0; j < t.artCol0; j++ {
				if obj[j] >= -t.colTol[j] {
					continue
				}
				// Compare scaled reduced costs across columns.
				if score := obj[j] / t.colTol[j]; score < best {
					best = score
					enter = j
				}
			}
		}
		if enter == -1 {
			return nil // optimal for this phase
		}
		// Ratio test.
		leave := -1
		var bestRatio float64
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= ratioEps {
				continue
			}
			ratio := t.a[i][t.ncols] / aij
			if leave == -1 || ratio < bestRatio-ratioEps ||
				(ratio < bestRatio+ratioEps && t.basis[i] < t.basis[leave]) {
				leave = i
				bestRatio = ratio
			}
		}
		if leave == -1 {
			t.unbounded = true
			return nil
		}
		t.pivot(leave, enter)

		// Degeneracy bookkeeping.
		if cur := t.objValue(); cur < lastObj-tol {
			lastObj = cur
			stall = 0
			bland = false
		} else {
			stall++
			if stall > window {
				bland = true
			}
		}
	}
	return iterLimitError(phase, t.pivots, t.m, t.n)
}

// pivot performs a Gauss–Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	t.pivots++
	a := t.a
	piv := a[row][col]
	inv := 1 / piv
	rr := a[row]
	for j := 0; j <= t.ncols; j++ {
		rr[j] *= inv
	}
	rr[col] = 1 // exact
	for i := 0; i <= t.m; i++ {
		if i == row {
			continue
		}
		f := a[i][col]
		if f == 0 {
			continue
		}
		ri := a[i]
		for j := 0; j <= t.ncols; j++ {
			ri[j] -= f * rr[j]
		}
		ri[col] = 0 // exact
	}
	t.basis[row] = col
}

// driveOutArtificials removes artificial variables from the basis after
// phase 1 so phase 2 cannot be polluted by them.
func (t *tableau) driveOutArtificials(ctx context.Context) error {
	for i := 0; i < t.m; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if t.basis[i] < t.artCol0 {
			continue
		}
		// Basic artificial at level ~0; pivot in any usable column.
		done := false
		for j := 0; j < t.artCol0 && !done; j++ {
			if math.Abs(t.a[i][j]) > 1e-7 {
				t.pivot(i, j)
				done = true
			}
		}
		// If no column qualifies the row is redundant; the artificial
		// stays basic at zero and is barred from entering elsewhere.
	}
	return nil
}

// extract builds the Solution from the final tableau.
func (t *tableau) extract(p *Problem) *Solution {
	x := make([]float64, t.n)
	for i := 0; i < t.m; i++ {
		b := t.basis[i]
		if b < t.n {
			v := t.a[i][t.ncols]
			if math.Abs(v) < zeroSnap {
				v = 0
			}
			x[b] = v
		}
	}
	var objVal float64
	for j, cj := range p.obj {
		objVal += cj * x[j]
	}
	// Duals: reduced cost of the slack/surplus (or artificial) column
	// of each row, with sign fixups for flipped rows and surplus sign.
	dual := make([]float64, t.m)
	obj := t.a[t.m]
	for i := 0; i < t.m; i++ {
		var y float64
		if sc := t.slackCol[i]; sc >= 0 {
			// The slack column is +e_i for LE rows (after RHS
			// normalization) and -e_i for GE rows. With reduced cost
			// r = c_j - y·A_j and c_j = 0, y_i = -r for +e_i and
			// y_i = +r for -e_i.
			r := obj[sc]
			if t.slackSign(i) > 0 {
				y = -r
			} else {
				y = r
			}
		} else if ac := t.artCol[i]; ac >= 0 {
			// artificial column is +e_i.
			y = -obj[ac]
		}
		// Undo the row flip: if row was multiplied by -1 the dual of
		// the original row is -y.
		dual[i] = y * t.rowSign[i]
		if math.Abs(dual[i]) < zeroSnap {
			dual[i] = 0
		}
	}
	enc := make([]int32, t.m)
	for i := 0; i < t.m; i++ {
		enc[i] = t.encodeCol(t.basis[i])
	}
	return &Solution{
		Status:   Optimal,
		Obj:      objVal,
		X:        x,
		Dual:     dual,
		Slack:    clampSlacks(rowSlacks(p, x)),
		Pivots:   t.pivots,
		RHSRange: t.rhsRanges(p),
		basis:    enc,
	}
}

// encodeCol translates a dense tableau column index into the canonical
// basis encoding shared with the revised solver: structural j → j,
// slack of row i → n+i, artificial of row i → n+m+i (see Basis).
func (t *tableau) encodeCol(col int) int32 {
	if col < t.n {
		return int32(col)
	}
	row := t.colRow[col-t.n]
	if col >= t.artCol0 {
		return int32(t.n + t.m + row)
	}
	return int32(t.n + row)
}

// rhsRanges computes, for each original constraint, the interval of RHS
// values over which the final basis remains optimal. The column of the
// final tableau corresponding to the initial identity column of row i
// holds B⁻¹e_i, from which the standard ranging formula follows.
func (t *tableau) rhsRanges(p *Problem) [][2]float64 {
	ranges := make([][2]float64, t.m)
	for r := 0; r < t.m; r++ {
		// Initial +e_r column in the normalized system.
		col := t.artCol[r]
		if t.slackCol[r] >= 0 && t.artCol[r] < 0 {
			col = t.slackCol[r]
		}
		lo, hi := math.Inf(-1), math.Inf(1)
		if col >= 0 {
			for i := 0; i < t.m; i++ {
				d := t.a[i][col] * t.rowSign[r] // d(x_B[i])/d(original RHS_r)
				if math.Abs(d) < 1e-12 {
					continue
				}
				xb := t.a[i][t.ncols]
				// Need xb + delta*d >= 0.
				bound := -xb / d
				if d > 0 {
					if bound > lo {
						lo = bound
					}
				} else {
					if bound < hi {
						hi = bound
					}
				}
			}
		}
		base := p.rows[r].RHS
		ranges[r] = [2]float64{base + lo, base + hi}
	}
	return ranges
}

// farkasRay reads the phase-1 duals out of the objective row at a
// phase-1 optimum with positive objective — the standard infeasibility
// certificate. For each row, the reduced cost of its initial identity
// column recovers y: slack columns have phase-1 cost 0, so y_i = -r
// for a +e_i slack and y_i = +r for a -e_i surplus; artificial columns
// have phase-1 cost 1, so y_i = 1 - r. Row flips are undone so the ray
// lives in the original row space (see Solution.FarkasRay).
func (t *tableau) farkasRay() []float64 {
	ray := make([]float64, t.m)
	obj := t.a[t.m]
	for i := 0; i < t.m; i++ {
		var y float64
		if sc := t.slackCol[i]; sc >= 0 {
			if t.slackSign(i) > 0 {
				y = -obj[sc]
			} else {
				y = obj[sc]
			}
		} else if ac := t.artCol[i]; ac >= 0 {
			y = 1 - obj[ac]
		}
		ray[i] = y * t.rowSign[i]
	}
	return ray
}

// slackSign reports whether row i's slack column entered with +1 (LE
// after normalization) or -1 (GE after normalization).
func (t *tableau) slackSign(i int) float64 {
	// We stored +1 for LE rows and -1 for GE rows at setup; recover it
	// from artCol: rows that received an artificial alongside a slack
	// column were GE rows.
	if t.artCol[i] >= 0 && t.slackCol[i] >= 0 {
		return -1
	}
	return 1
}

func clampSlacks(s []float64) []float64 {
	for i, v := range s {
		if math.Abs(v) < zeroSnap {
			s[i] = 0
		}
	}
	return s
}
