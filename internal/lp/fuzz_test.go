// Differential fuzzing of the sparse revised simplex against the dense
// tableau oracle. The two solvers share every convention (tolerances,
// pricing, tie-breaks), so on any decodable program they must agree on
// the status and, when optimal, on the objective value. The corpus is
// seeded with the actual MinTc LPs of the paper's circuits plus small
// hand-built programs covering each status.
package lp_test

import (
	"context"
	"encoding/binary"
	"math"
	"testing"
	"time"

	"mintc/internal/circuits"
	"mintc/internal/core"
	"mintc/internal/lp"
)

// Encoding: u8 n, u8 m, n×f64 objective, then m rows of
// {u8 rel, u8 k, k×(u8 var, f64 coef), f64 rhs}. The decoder snaps
// every float to a 1/16 grid inside moderate bounds so fuzzed inputs
// stay well conditioned: a disagreement on such a program is a solver
// bug, not tolerance dirt.
const (
	fuzzMaxVars = 64
	fuzzMaxRows = 128
)

func snapCoef(f, lim float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	v := math.Round(f*16) / 16
	return math.Max(-lim, math.Min(lim, v))
}

func takeF64(data []byte, pos *int) (float64, bool) {
	if *pos+8 > len(data) {
		return 0, false
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(data[*pos:]))
	*pos += 8
	return v, true
}

// decodeProblem turns fuzz bytes into an SMO-shaped LP (minimize c·x,
// x >= 0, mixed-relation rows) or nil when the input is too short to
// yield at least one constraint.
func decodeProblem(data []byte) *lp.Problem {
	if len(data) < 2 {
		return nil
	}
	n := 1 + int(data[0])%fuzzMaxVars
	m := 1 + int(data[1])%fuzzMaxRows
	pos := 2
	p := &lp.Problem{}
	for j := 0; j < n; j++ {
		f, _ := takeF64(data, &pos)
		p.AddVar("", snapCoef(f, 16))
	}
	for i := 0; i < m; i++ {
		if pos+2 > len(data) {
			break
		}
		rel := lp.Rel(data[pos] % 3)
		k := int(data[pos+1]) % (n + 1)
		pos += 2
		terms := make([]lp.Term, 0, k)
		for t := 0; t < k; t++ {
			if pos >= len(data) {
				break
			}
			v := int(data[pos]) % n
			pos++
			f, _ := takeF64(data, &pos)
			if c := snapCoef(f, 16); c != 0 {
				terms = append(terms, lp.Term{Var: v, Coef: c})
			}
		}
		f, _ := takeF64(data, &pos)
		p.AddConstraint("", terms, rel, snapCoef(f, 256))
	}
	if p.NumConstraints() == 0 {
		return nil
	}
	return p
}

// encodeProblem is the decoder's inverse for corpus seeding; returns
// nil when the program exceeds the encoding's size fields.
func encodeProblem(p *lp.Problem) []byte {
	n, m := p.NumVars(), p.NumConstraints()
	if n < 1 || n > fuzzMaxVars || m < 1 || m > fuzzMaxRows {
		return nil
	}
	var out []byte
	putF64 := func(f float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		out = append(out, b[:]...)
	}
	out = append(out, byte(n-1), byte(m-1)) // decoder reads 1 + b%max
	for j := 0; j < n; j++ {
		putF64(p.ObjCoef(j))
	}
	for i := 0; i < m; i++ {
		row := p.Constraint(i)
		terms := row.Terms
		if len(terms) > n {
			terms = terms[:n]
		}
		out = append(out, byte(row.Rel), byte(len(terms)))
		for _, t := range terms {
			out = append(out, byte(t.Var%n))
			putF64(t.Coef)
		}
		putF64(row.RHS)
	}
	return out
}

// FuzzSolveSparseVsDense cross-checks the revised simplex against the
// dense oracle: equal status always, objectives within 1e-7 when both
// report an optimum.
func FuzzSolveSparseVsDense(f *testing.F) {
	// The paper's circuits, through the real MinTc LP builder.
	for _, c := range []*core.Circuit{
		circuits.Example2(),
		circuits.GaAsMIPS(),
		circuits.Fig1(circuits.DefaultFig1Delays(), 2, 3),
	} {
		p, _, _ := core.BuildLP(c, core.Options{})
		if b := encodeProblem(p); b != nil {
			f.Add(b)
		}
	}
	// The schedule-objective LP shapes: max-margin adds a slack column
	// threaded through every setup-type row (negated objective), and
	// min-phase-width re-costs the fixed-Tc system onto the T columns —
	// both exercise cost vectors the min-Tc seeds never produce.
	for _, obj := range []core.Objective{core.MaxMarginAt(6), core.MinPhaseWidthAt(6)} {
		p, _, _ := core.BuildLP(circuits.GaAsMIPS(), core.Options{Objective: obj})
		if b := encodeProblem(p); b != nil {
			f.Add(b)
		}
		p, _, _ = core.BuildLP(circuits.Example1(80), core.Options{Objective: core.Objective{Kind: obj.Kind, FixedTc: 100}})
		if b := encodeProblem(p); b != nil {
			f.Add(b)
		}
	}
	// One seed per status.
	feas := &lp.Problem{}
	x0 := feas.AddVar("x0", 1)
	x1 := feas.AddVar("x1", 1)
	feas.AddConstraint("", []lp.Term{{Var: x0, Coef: 1}, {Var: x1, Coef: 1}}, lp.GE, 1)
	feas.AddConstraint("", []lp.Term{{Var: x0, Coef: 1}}, lp.LE, 3)
	infeas := &lp.Problem{}
	y := infeas.AddVar("y", 1)
	infeas.AddConstraint("", []lp.Term{{Var: y, Coef: 1}}, lp.LE, -1)
	unb := &lp.Problem{}
	z := unb.AddVar("z", -1)
	unb.AddConstraint("", []lp.Term{{Var: z, Coef: 1}}, lp.GE, 1)
	for _, p := range []*lp.Problem{feas, infeas, unb} {
		if b := encodeProblem(p); b != nil {
			f.Add(b)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeProblem(data)
		if p == nil {
			return
		}
		// Mutated programs can stall a trajectory for hundreds of
		// thousands of degenerate pivots; a tight deadline skips those
		// instead of letting one input eat the whole fuzz budget.
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		dense, derr := lp.SolveDenseCtx(ctx, p)
		sparse, serr := lp.SolveCtx(ctx, p)
		if derr != nil || serr != nil {
			// Timeouts and iteration-limit bail-outs are not
			// disagreements; a program that stalls one pivoting
			// trajectory may not stall the other.
			return
		}
		if dense.Status != sparse.Status {
			t.Fatalf("status disagreement: dense=%v sparse=%v\n%s", dense.Status, sparse.Status, p)
		}
		if dense.Status == lp.Optimal {
			if diff := math.Abs(dense.Obj - sparse.Obj); diff > 1e-7*(1+math.Abs(dense.Obj)) {
				t.Fatalf("objective disagreement: dense=%.12g sparse=%.12g (diff %.3g)\n%s",
					dense.Obj, sparse.Obj, diff, p)
			}
		}
	})
}
