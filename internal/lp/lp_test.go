package lp

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

const tol = 1e-6

func approx(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestTrivialSingleVar(t *testing.T) {
	var p Problem
	x := p.AddVar("x", 1)
	p.AddConstraint("lb", []Term{{x, 1}}, GE, 3)
	s := solveOK(t, &p)
	if !approx(s.Obj, 3) || !approx(s.X[x], 3) {
		t.Errorf("got obj=%g x=%g, want 3,3", s.Obj, s.X[x])
	}
}

func TestTwoVarClassic(t *testing.T) {
	// min -x - 2y  s.t. x + y <= 4, x <= 2, y <= 3  => x=1? enumerate:
	// vertices: (2,2): -6; (1,3): -7; (0,3): -6; (2,0): -2. opt (1,3).
	var p Problem
	x := p.AddVar("x", -1)
	y := p.AddVar("y", -2)
	p.AddConstraint("sum", []Term{{x, 1}, {y, 1}}, LE, 4)
	p.AddConstraint("xcap", []Term{{x, 1}}, LE, 2)
	p.AddConstraint("ycap", []Term{{y, 1}}, LE, 3)
	s := solveOK(t, &p)
	if !approx(s.Obj, -7) {
		t.Fatalf("obj = %g, want -7", s.Obj)
	}
	if !approx(s.X[x], 1) || !approx(s.X[y], 3) {
		t.Errorf("x,y = %g,%g want 1,3", s.X[x], s.X[y])
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + y s.t. x + y == 5, x >= 2  => obj 5.
	var p Problem
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.AddConstraint("eq", []Term{{x, 1}, {y, 1}}, EQ, 5)
	p.AddConstraint("xlb", []Term{{x, 1}}, GE, 2)
	s := solveOK(t, &p)
	if !approx(s.Obj, 5) {
		t.Errorf("obj = %g, want 5", s.Obj)
	}
	if s.X[x] < 2-tol {
		t.Errorf("x = %g violates x >= 2", s.X[x])
	}
}

func TestInfeasible(t *testing.T) {
	var p Problem
	x := p.AddVar("x", 1)
	p.AddConstraint("hi", []Term{{x, 1}}, LE, 1)
	p.AddConstraint("lo", []Term{{x, 1}}, GE, 2)
	s, err := Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	var p Problem
	x := p.AddVar("x", -1) // maximize x with no upper bound
	p.AddConstraint("lb", []Term{{x, 1}}, GE, 0)
	s, err := Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2 with min x: y must be >= x + 2; min x = 0 feasible
	// with y = 2 (y unconstrained above). Add y <= 5 for boundedness of
	// the test's logic (not required for optimality here).
	var p Problem
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 0)
	p.AddConstraint("gap", []Term{{x, 1}, {y, -1}}, LE, -2)
	p.AddConstraint("ycap", []Term{{y, 1}}, LE, 5)
	s := solveOK(t, &p)
	if !approx(s.Obj, 0) {
		t.Errorf("obj = %g, want 0", s.Obj)
	}
	if s.X[x]-s.X[y] > -2+tol {
		t.Errorf("constraint violated: x=%g y=%g", s.X[x], s.X[y])
	}
}

func TestZeroVariableProblem(t *testing.T) {
	var p Problem
	s, err := Solve(&p)
	if err != nil || s.Status != Optimal {
		t.Fatalf("empty problem: %v %v", s.Status, err)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Multiple constraints active at the optimum; just verify we
	// terminate and get the right value.
	var p Problem
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	z := p.AddVar("z", 1)
	p.AddConstraint("a", []Term{{x, 1}, {y, 1}, {z, 1}}, GE, 10)
	p.AddConstraint("b", []Term{{x, 1}, {y, 1}}, GE, 10)
	p.AddConstraint("c", []Term{{x, 1}}, GE, 5)
	p.AddConstraint("d", []Term{{y, 1}}, GE, 5)
	s := solveOK(t, &p)
	if !approx(s.Obj, 10) {
		t.Errorf("obj = %g, want 10", s.Obj)
	}
}

func TestDualsOnSimpleProblem(t *testing.T) {
	// min x s.t. x >= 4. Dual of the binding GE row: dObj/dRHS = 1.
	var p Problem
	x := p.AddVar("x", 1)
	i := p.AddConstraint("lb", []Term{{x, 1}}, GE, 4)
	s := solveOK(t, &p)
	if !approx(s.Dual[i], 1) {
		t.Errorf("dual = %g, want 1", s.Dual[i])
	}
	if s.Slack[i] != 0 {
		t.Errorf("slack = %g, want 0", s.Slack[i])
	}
}

func TestDualsLEBinding(t *testing.T) {
	// max x (min -x) s.t. x <= 7: dObj/dRHS = -1 (objective -x drops by
	// 1 per unit RHS increase).
	var p Problem
	x := p.AddVar("x", -1)
	i := p.AddConstraint("ub", []Term{{x, 1}}, LE, 7)
	s := solveOK(t, &p)
	if !approx(s.Dual[i], -1) {
		t.Errorf("dual = %g, want -1", s.Dual[i])
	}
}

func TestDualFiniteDifference(t *testing.T) {
	// Verify Dual[i] == d(Obj)/d(RHS_i) by finite differences on a
	// nondegenerate problem.
	build := func(b1, b2 float64) *Problem {
		var p Problem
		x := p.AddVar("x", 2)
		y := p.AddVar("y", 3)
		p.AddConstraint("r1", []Term{{x, 1}, {y, 2}}, GE, b1)
		p.AddConstraint("r2", []Term{{x, 3}, {y, 1}}, GE, b2)
		return &p
	}
	base := solveOK(t, build(10, 15))
	const h = 1e-4
	for i, b := range [][2]float64{{10 + h, 15}, {10, 15 + h}} {
		pert := solveOK(t, build(b[0], b[1]))
		fd := (pert.Obj - base.Obj) / h
		if math.Abs(fd-base.Dual[i]) > 1e-3 {
			t.Errorf("dual[%d] = %g, finite difference = %g", i, base.Dual[i], fd)
		}
	}
}

func TestSlackValues(t *testing.T) {
	var p Problem
	x := p.AddVar("x", 1)
	lb := p.AddConstraint("lb", []Term{{x, 1}}, GE, 3)
	ub := p.AddConstraint("ub", []Term{{x, 1}}, LE, 10)
	s := solveOK(t, &p)
	if s.Slack[lb] != 0 {
		t.Errorf("binding slack = %g, want 0", s.Slack[lb])
	}
	if !approx(s.Slack[ub], 7) {
		t.Errorf("loose slack = %g, want 7", s.Slack[ub])
	}
}

func TestRHSRanging(t *testing.T) {
	// min x s.t. x >= 4, x <= 10. Basis optimal for RHS of "lb" in
	// [0? .. 10]: increasing lb RHS keeps x basic until it hits 10
	// (where slack of ub hits 0); decreasing until 0 (x >= 0 floor).
	var p Problem
	x := p.AddVar("x", 1)
	lb := p.AddConstraint("lb", []Term{{x, 1}}, GE, 4)
	p.AddConstraint("ub", []Term{{x, 1}}, LE, 10)
	s := solveOK(t, &p)
	r := s.RHSRange[lb]
	if r[0] > tol || !approx(r[1], 10) {
		t.Errorf("RHSRange[lb] = %v, want [<=0, 10]", r)
	}
	// Objective inside the range follows Dual: at RHS=8 obj should be 8.
	var p2 Problem
	x2 := p2.AddVar("x", 1)
	p2.AddConstraint("lb", []Term{{x2, 1}}, GE, 8)
	p2.AddConstraint("ub", []Term{{x2, 1}}, LE, 10)
	s2 := solveOK(t, &p2)
	predicted := s.Obj + s.Dual[lb]*(8-4)
	if !approx(s2.Obj, predicted) {
		t.Errorf("obj at RHS=8: %g, dual-predicted %g", s2.Obj, predicted)
	}
}

func TestProblemString(t *testing.T) {
	var p Problem
	x := p.AddVar("x", 1)
	y := p.AddVar("y", -2)
	p.AddConstraint("row", []Term{{x, 1}, {y, -1}}, LE, 3)
	s := p.String()
	for _, want := range []string{"minimize", "x - 2*y", "[row]", "x - y <= 3", "x >= 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestAddConstraintUnknownVarPanics(t *testing.T) {
	var p Problem
	p.AddVar("x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown variable")
		}
	}()
	p.AddConstraint("bad", []Term{{5, 1}}, LE, 1)
}

func TestRepeatedTermsAccumulate(t *testing.T) {
	var p Problem
	x := p.AddVar("x", 1)
	p.AddConstraint("r", []Term{{x, 1}, {x, 1}}, GE, 6) // 2x >= 6
	s := solveOK(t, &p)
	if !approx(s.X[x], 3) {
		t.Errorf("x = %g, want 3", s.X[x])
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows force a redundant artificial row after
	// phase 1; the solver must cope.
	var p Problem
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.AddConstraint("e1", []Term{{x, 1}, {y, 1}}, EQ, 4)
	p.AddConstraint("e2", []Term{{x, 1}, {y, 1}}, EQ, 4)
	p.AddConstraint("lo", []Term{{x, 1}}, GE, 1)
	s := solveOK(t, &p)
	if !approx(s.Obj, 4) {
		t.Errorf("obj = %g, want 4", s.Obj)
	}
}

// --- randomized cross-check against a vertex-enumeration oracle ---

type denseLP struct {
	c    []float64
	a    [][]float64
	rel  []Rel
	rhs  []float64
	nVar int
}

func (d *denseLP) problem() *Problem {
	var p Problem
	for j := 0; j < d.nVar; j++ {
		p.AddVar("x", d.c[j])
	}
	for i := range d.a {
		var terms []Term
		for j, v := range d.a[i] {
			if v != 0 {
				terms = append(terms, Term{j, v})
			}
		}
		p.AddConstraint("r", terms, d.rel[i], d.rhs[i])
	}
	return &p
}

// feasible checks x against all rows and x >= 0.
func (d *denseLP) feasible(x []float64) bool {
	const fe = 1e-7
	for _, v := range x {
		if v < -fe {
			return false
		}
	}
	for i := range d.a {
		var lhs float64
		for j := range x {
			lhs += d.a[i][j] * x[j]
		}
		switch d.rel[i] {
		case LE:
			if lhs > d.rhs[i]+fe {
				return false
			}
		case GE:
			if lhs < d.rhs[i]-fe {
				return false
			}
		case EQ:
			if math.Abs(lhs-d.rhs[i]) > fe {
				return false
			}
		}
	}
	return true
}

// bruteForce enumerates all vertices (intersections of n active
// constraint hyperplanes drawn from rows + axis planes) and returns the
// best feasible objective, or NaN if none found. Only valid when the LP
// optimum is attained at a vertex (always true for feasible bounded LPs
// in standard form).
func (d *denseLP) bruteForce() float64 {
	n := d.nVar
	// Build full row set: constraint rows (as equalities when active)
	// plus axis rows x_j = 0.
	type row struct {
		a   []float64
		rhs float64
	}
	var rows []row
	for i := range d.a {
		rows = append(rows, row{d.a[i], d.rhs[i]})
	}
	for j := 0; j < n; j++ {
		a := make([]float64, n)
		a[j] = 1
		rows = append(rows, row{a, 0})
	}
	best := math.NaN()
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			// Solve the k x k system by Gaussian elimination.
			m := make([][]float64, n)
			for r := 0; r < n; r++ {
				m[r] = make([]float64, n+1)
				copy(m[r], rows[idx[r]].a)
				m[r][n] = rows[idx[r]].rhs
			}
			x, ok := gauss(m)
			if !ok || !d.feasible(x) {
				return
			}
			var obj float64
			for j := 0; j < n; j++ {
				obj += d.c[j] * x[j]
			}
			if math.IsNaN(best) || obj < best {
				best = obj
			}
			return
		}
		for i := start; i < len(rows); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

func gauss(m [][]float64) ([]float64, bool) {
	n := len(m)
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if math.Abs(m[r][col]) > 1e-9 && (piv == -1 || math.Abs(m[r][col]) > math.Abs(m[piv][col])) {
				piv = r
			}
		}
		if piv == -1 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		f := m[col][col]
		for j := col; j <= n; j++ {
			m[col][j] /= f
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col]
			for j := col; j <= n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	x := make([]float64, n)
	for r := 0; r < n; r++ {
		x[r] = m[r][n]
	}
	return x, true
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for iter := 0; iter < 300; iter++ {
		nVar := 1 + rng.Intn(3)
		nRow := 1 + rng.Intn(5)
		d := &denseLP{nVar: nVar}
		for j := 0; j < nVar; j++ {
			d.c = append(d.c, float64(rng.Intn(11)-5))
		}
		for i := 0; i < nRow; i++ {
			row := make([]float64, nVar)
			for j := range row {
				row[j] = float64(rng.Intn(9) - 4)
			}
			d.a = append(d.a, row)
			d.rel = append(d.rel, Rel(rng.Intn(2))) // LE or GE only
			d.rhs = append(d.rhs, float64(rng.Intn(17)-8))
		}
		want := d.bruteForce()

		s, err := Solve(d.problem())
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, d.problem())
		}
		switch s.Status {
		case Infeasible:
			if !math.IsNaN(want) {
				t.Fatalf("iter %d: solver infeasible but oracle found %g\n%s", iter, want, d.problem())
			}
		case Unbounded:
			// Oracle can't certify unboundedness; just check that the
			// solver never *under*claims: verify some feasible point
			// exists (brute force found one) or the region is feasible.
			// Nothing stronger to assert here.
		case Optimal:
			if math.IsNaN(want) {
				t.Fatalf("iter %d: solver optimal (%g) but oracle infeasible\n%s", iter, s.Obj, d.problem())
			}
			if math.Abs(s.Obj-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("iter %d: obj %g, oracle %g\n%s", iter, s.Obj, want, d.problem())
			}
			if !d.feasible(s.X) {
				t.Fatalf("iter %d: solution infeasible: %v\n%s", iter, s.X, d.problem())
			}
		}
	}
}

func TestPivotCountReported(t *testing.T) {
	var p Problem
	x := p.AddVar("x", -1)
	y := p.AddVar("y", -1)
	p.AddConstraint("a", []Term{{x, 1}, {y, 2}}, LE, 10)
	p.AddConstraint("b", []Term{{x, 2}, {y, 1}}, LE, 10)
	s := solveOK(t, &p)
	if s.Pivots <= 0 {
		t.Errorf("pivots = %d, want > 0", s.Pivots)
	}
}

func BenchmarkSolveDense50x100(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(3))
	var p Problem
	const nv, nr = 50, 100
	for j := 0; j < nv; j++ {
		p.AddVar("x", rng.Float64())
	}
	for i := 0; i < nr; i++ {
		var terms []Term
		for j := 0; j < nv; j++ {
			if rng.Float64() < 0.3 {
				terms = append(terms, Term{j, rng.Float64()*4 - 1})
			}
		}
		p.AddConstraint("r", terms, GE, rng.Float64()*5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(&p); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBealeCyclingExample: the classic LP on which naive Dantzig
// pricing with fixed tie-breaking cycles forever. The solver's
// stall-triggered switch to Bland's rule must terminate at the known
// optimum z* = -1/20.
func TestBealeCyclingExample(t *testing.T) {
	var p Problem
	x1 := p.AddVar("x1", -0.75)
	x2 := p.AddVar("x2", 150)
	x3 := p.AddVar("x3", -0.02)
	x4 := p.AddVar("x4", 6)
	p.AddConstraint("r1", []Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	p.AddConstraint("r2", []Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	p.AddConstraint("r3", []Term{{x3, 1}}, LE, 1)
	s := solveOK(t, &p)
	if math.Abs(s.Obj-(-0.05)) > 1e-9 {
		t.Errorf("Beale optimum = %g, want -0.05", s.Obj)
	}
}

// TestKleeMintyCube: the worst case for Dantzig pricing (exponential
// pivot path on the deformed cube). n = 8 stays fast but exercises
// many pivots; the solver must reach the known optimum -100^(n-1).
func TestKleeMintyCube(t *testing.T) {
	const n = 8
	var p Problem
	xs := make([]int, n)
	for i := 0; i < n; i++ {
		coef := -math.Pow(100, float64(n-1-i))
		xs[i] = p.AddVar("x", coef)
	}
	for i := 0; i < n; i++ {
		terms := []Term{{xs[i], 1}}
		for j := 0; j < i; j++ {
			terms = append(terms, Term{xs[j], 2 * math.Pow(100, float64(i-j))})
		}
		p.AddConstraint("km", terms, LE, math.Pow(100, float64(i)))
	}
	s := solveOK(t, &p)
	want := -math.Pow(100, float64(n-1))
	if math.Abs(s.Obj-want) > 1e-6*math.Abs(want) {
		t.Errorf("Klee-Minty optimum = %g, want %g", s.Obj, want)
	}
}

func TestAccessorsAndStatusStrings(t *testing.T) {
	var p Problem
	x := p.AddVar("alpha", 1)
	row := p.AddConstraint("r0", []Term{{x, 1}}, GE, 1)
	if p.VarName(x) != "alpha" {
		t.Errorf("VarName = %q", p.VarName(x))
	}
	if p.ConstraintName(row) != "r0" {
		t.Errorf("ConstraintName = %q", p.ConstraintName(row))
	}
	for _, tc := range []struct {
		s    fmt.Stringer
		want string
	}{
		{LE, "<="}, {GE, ">="}, {EQ, "=="}, {Rel(9), "Rel(9)"},
		{Optimal, "optimal"}, {Infeasible, "infeasible"}, {Unbounded, "unbounded"}, {Status(7), "Status(7)"},
	} {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestSetObjCoefAndClear(t *testing.T) {
	var p Problem
	x := p.AddVar("x", 5)
	p.AddConstraint("lb", []Term{{x, 1}}, GE, 2)
	p.AddConstraint("ub", []Term{{x, 1}}, LE, 9)
	p.ClearObjective()
	p.SetObjCoef(x, -1) // now maximize x
	s := solveOK(t, &p)
	if !approx(s.X[x], 9) {
		t.Errorf("after objective swap x = %g, want 9", s.X[x])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetObjCoef out of range did not panic")
		}
	}()
	p.SetObjCoef(42, 1)
}

func TestZeroVarProblemWithRows(t *testing.T) {
	// Constant rows over no variables: 0 <= 1 feasible; 0 >= 1 not.
	var feasible Problem
	feasible.AddConstraint("ok", nil, LE, 1)
	s, err := Solve(&feasible)
	if err != nil || s.Status != Optimal {
		t.Fatalf("constant-feasible: %v %v", s.Status, err)
	}
	var infeasible Problem
	infeasible.AddConstraint("bad", nil, GE, 1)
	s, err = Solve(&infeasible)
	if err != nil || s.Status != Infeasible {
		t.Fatalf("constant-infeasible: %v %v", s.Status, err)
	}
	var eqBad Problem
	eqBad.AddConstraint("eq", nil, EQ, 2)
	s, err = Solve(&eqBad)
	if err != nil || s.Status != Infeasible {
		t.Fatalf("constant-eq: %v %v", s.Status, err)
	}
}

func TestProblemStringCoefficientForms(t *testing.T) {
	var p Problem
	x := p.AddVar("x", 0)
	y := p.AddVar("y", 0)
	p.AddConstraint("mix", []Term{{x, 2.5}, {y, -3.5}}, EQ, 1)
	p.AddConstraint("neglead", []Term{{x, -1}}, LE, 0)
	p.AddConstraint("zeros", []Term{{x, 0}}, LE, 4)
	s := p.String()
	for _, want := range []string{"2.5*x - 3.5*y == 1", "-x <= 0", "0 <= 4", "minimize 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}
