package lp

// Solve scratch arena: every dense working vector, factorization
// buffer and assembly workspace a revised-simplex solve needs, owned
// as one unit and recycled across solves through a sync.Pool (see
// scratch_pool.go; the noscratch build tag swaps in a fresh arena per
// solve for differential testing).
//
// The bit-identity contract: a solve on a recycled arena must produce
// exactly the same Solution as a solve on a fresh one. Each buffer
// therefore falls into one of three classes, re-established on every
// acquisition (arena.bind / basisFor / revisedFor):
//
//   - fully overwritten before any read (xB, cB, y, y2, w, rhs, obj,
//     CSC arrays): reuse as-is;
//   - self-cleaning (v and c are left zeroed by ftran/btran; the LU's
//     scatter vector x is re-zeroed by factorize): reuse as-is, but
//     re-zeroed on bind anyway as cheap O(m) insurance;
//   - stateful (where maps, stamp workspaces, visited marks, pricer
//     candidates): explicitly reset to their freshly-made value.
//
// Escaping outputs (Solution.X/Dual/Slack/RHSRange, basis encodings,
// Farkas rays) are always freshly allocated; nothing handed to a
// caller aliases arena memory.

// rowEnt is one accumulated (row, col, coef) entry produced by
// assembly pass 1 (moved to package scope so the arena can pool the
// slice).
type rowEnt struct {
	row  int32
	col  int32
	coef float64
}

// arena bundles all scratch for one in-flight solve.
type arena struct {
	st  store
	lu  basisLU
	pr  pricer
	rev revised

	// assemble workspace
	acc    []float64
	stamp  []int
	ents   []rowEnt
	counts []int32
	next   []int32

	// batched-FTRAN workspace (SolveBatch): flat k×m blocks plus the
	// per-vector slice headers handed to ftranN.
	batchBuf []float64
	batchVec [][]float64

	used   bool // the arena has served at least one earlier solve
	reused bool // this acquisition recycled a previously used arena
	grows  int  // buffers (re)grown during the current solve
}

// growF64 returns s resized to n, reallocating (and counting the
// growth) only when capacity is insufficient. Contents beyond a fresh
// allocation's zeros are unspecified; callers own the reset policy.
func growF64(a *arena, s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
		a.grows++
	}
	*s = (*s)[:n]
	return *s
}

func growI32(a *arena, s *[]int32, n int) []int32 {
	if cap(*s) < n {
		*s = make([]int32, n)
		a.grows++
	}
	*s = (*s)[:n]
	return *s
}

func growInts(a *arena, s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
		a.grows++
	}
	*s = (*s)[:n]
	return *s
}

// basisFor binds the arena's LU workspace to an m-row store and
// resets it to the state a fresh newBasisLU would have.
func (a *arena) basisFor(st *store) *basisLU {
	b := &a.lu
	m := st.m
	b.m = m
	b.p = growI32(a, &b.p, m)
	b.pinv = growI32(a, &b.pinv, m)
	b.q = growI32(a, &b.q, m)
	b.x = growF64(a, &b.x, m)
	b.visited = growI32(a, &b.visited, m)
	b.zk = growF64(a, &b.zk, m)
	for i := 0; i < m; i++ {
		b.x[i] = 0
		b.visited[i] = 0
	}
	b.vstamp = 0
	b.topo = b.topo[:0]
	b.fstack = b.fstack[:0]
	b.lp = b.lp[:0]
	b.li = b.li[:0]
	b.lx = b.lx[:0]
	b.up = b.up[:0]
	b.ui = b.ui[:0]
	b.ux = b.ux[:0]
	b.ud = b.ud[:0]
	b.clearEtas()
	b.luNnz = 0
	b.refactors = 0
	return b
}

// pricerFor binds the arena's pricer to the store with an empty
// candidate list.
func (a *arena) pricerFor(st *store) *pricer {
	pr := &a.pr
	pr.st = st
	pr.cand = pr.cand[:0]
	pr.scores = pr.scores[:0]
	return pr
}

// revisedFor binds the arena's solver state to an assembled store,
// re-establishing every fresh-allocation invariant newRevised would
// provide.
func (a *arena) revisedFor(st *store) *revised {
	m := st.m
	r := &a.rev
	r.st = st
	r.lu = a.basisFor(st)
	r.pr = a.pricerFor(st)
	r.basis = growI32(a, &r.basis, m)
	r.where = growI32(a, &r.where, int(st.numCols()))
	for i := range r.where {
		r.where[i] = -1
	}
	r.xB = growF64(a, &r.xB, m)
	r.cB = growF64(a, &r.cB, m)
	r.y = growF64(a, &r.y, m)
	r.y2 = growF64(a, &r.y2, m)
	r.v = growF64(a, &r.v, m)
	r.c = growF64(a, &r.c, m)
	r.w = growF64(a, &r.w, m)
	for i := 0; i < m; i++ {
		r.v[i] = 0
		r.c[i] = 0
	}
	r.pivots = 0
	r.stats = SolveStats{}
	return r
}

// batchVectors returns k m-length float64 slices backed by one flat
// arena block (row-major), for SolveBatch's multi-RHS FTRAN.
func (a *arena) batchVectors(k, m int) [][]float64 {
	buf := growF64(a, &a.batchBuf, k*m)
	if cap(a.batchVec) < k {
		a.batchVec = make([][]float64, k)
		a.grows++
	}
	vecs := a.batchVec[:k]
	for j := 0; j < k; j++ {
		vecs[j] = buf[j*m : (j+1)*m : (j+1)*m]
	}
	return vecs
}
