package lp

import (
	"context"
	"time"

	"mintc/internal/faultinject"
)

// Basis is an opaque snapshot of a simplex basis in the canonical
// column encoding (structural j → j, slack of row i → n+i, artificial
// of row i → n+m+i). A Basis taken from one optimal solve can seed a
// warm re-solve of any problem with the same shape — same variable
// count, row count and per-row relations — which is exactly what the
// overlay/session layers produce: identical constraint structure with
// edited delay RHS values.
type Basis struct {
	m, n int
	ids  []int32
}

// Basis returns the final optimal basis, or nil when the solve did not
// end at an optimal vertex (infeasible, unbounded, cancelled). The
// returned value is independent of the Solution and safe to retain.
func (s *Solution) Basis() *Basis {
	if s == nil || s.basis == nil {
		return nil
	}
	ids := make([]int32, len(s.basis))
	copy(ids, s.basis)
	return &Basis{m: len(s.basis), n: len(s.X), ids: ids}
}

// SolveCtxFrom solves p warm-started from a previously optimal basis.
// When only the RHS changed since the basis was optimal (the SMO
// overlay case: delays enter the LP only through RHS values) the old
// basis stays dual feasible and the solve runs the dual simplex from
// it, typically in a handful of pivots instead of a full two-phase
// solve. A nil, mismatched or otherwise unusable basis silently falls
// back to a cold SolveCtx, so callers can pass whatever basis they
// last saw without shape bookkeeping.
func SolveCtxFrom(ctx context.Context, p *Problem, b *Basis) (*Solution, error) {
	if wantDense(ctx) {
		// The dense oracle has no warm path; keeping the knob authoritative
		// makes dense-baseline benchmark sweeps measure true cold re-solves.
		return SolveDenseCtx(ctx, p)
	}
	if sol, done := solveTrivial(p); done {
		return sol, nil
	}
	if faultinject.Fire("lp.warm") != nil {
		b = nil // injected unusable-basis fault: force the cold path
	}
	if b == nil || b.m != len(p.rows) || b.n != len(p.names) {
		return solveRevised(ctx, p, nil)
	}
	return solveRevised(ctx, p, b)
}

// installWarm validates the basis ids and factorizes the warm basis.
// A false return means the basis is unusable (bad shape, duplicate
// ids, slack of an equality row, singular matrix); the caller discards
// the whole solver state, so no cleanup happens here.
func (r *revised) installWarm(b *Basis) bool {
	st := r.st
	for _, id := range b.ids {
		if id < 0 || id >= st.numCols() {
			return false
		}
		if int(id) >= st.n && !st.isArtificial(id) && st.slackSign[st.slackRow(id)] == 0 {
			return false
		}
	}
	for i, id := range b.ids {
		if r.where[id] >= 0 {
			return false // duplicate
		}
		r.basis[i] = id
		r.where[id] = int32(i)
	}
	t := time.Now()
	err := r.lu.factorize(st, r.basis)
	r.stats.FactorTime += time.Since(t)
	r.stats.Refactorizations++
	return err == nil
}

// warmRun attempts the warm-started solve. ok=false (with nil error)
// means the basis could not be used and the caller should cold-start;
// ok=true means the warm path owned the solve and sol/err are final.
func (r *revised) warmRun(ctx context.Context, p *Problem, warm *Basis) (sol *Solution, ok bool, err error) {
	st := r.st
	if !r.installWarm(warm) {
		return nil, false, nil
	}
	r.recomputeXB()
	r.loadCosts(false)
	feasTol := 1e-7 * (1 + st.scale)

	if !r.primalFeasible(feasTol) {
		// The warm bet: with RHS-only edits the old optimal basis is
		// still dual feasible, so the dual simplex can walk back to
		// primal feasibility. Verify the bet before committing.
		r.duals()
		lim := int32(st.n + st.m)
		for id := int32(0); id < lim; id++ {
			if r.where[id] >= 0 || !st.eligible(id) {
				continue
			}
			if st.cost(id, false)-st.colDot(r.y, id) < -st.tol(id) {
				return nil, false, nil
			}
		}
		feasible, abandon, derr := r.dualIterate(ctx, feasTol)
		if derr != nil {
			return &Solution{Pivots: r.pivots}, true, derr
		}
		if abandon {
			return nil, false, nil
		}
		if !feasible {
			// dualIterate left rho = B^-T e_leave for the failing row in
			// y2: no eligible column has a negative transformed entry
			// there, so y = -rho (flips undone) is a Farkas ray.
			ray := make([]float64, st.m)
			for i := range ray {
				ray[i] = -r.y2[i] * st.rowSign[i]
			}
			return &Solution{Status: Infeasible, Pivots: r.pivots, FarkasRay: ray}, true, nil
		}
	}

	// A leftover basic artificial above tolerance means this basis
	// cannot certify feasibility of the edited program; phase 1 must
	// decide, so fall back to the cold path.
	for i, id := range r.basis {
		if st.isArtificial(id) && r.xB[i] > feasTol {
			return nil, false, nil
		}
	}

	// Primal phase-2 mop-up from the (near-)feasible basis; on an
	// unchanged-optimum re-solve this prices once and stops.
	r.pr.reset()
	unbounded, err := r.iterate(ctx, 2)
	if err != nil {
		return &Solution{Pivots: r.pivots}, true, err
	}
	if unbounded {
		return &Solution{Status: Unbounded, Pivots: r.pivots}, true, nil
	}
	sol, err = r.extract(ctx, p)
	return sol, true, err
}

// primalFeasible reports whether every basic value is nonnegative
// within tolerance.
func (r *revised) primalFeasible(feasTol float64) bool {
	for _, v := range r.xB {
		if v < -feasTol {
			return false
		}
	}
	return true
}

// dualIterate runs dual simplex pivots until primal feasibility
// (feasible=true), a primal-infeasibility certificate (feasible=false),
// a degeneracy stall (abandon=true: the caller cold-starts instead),
// cancellation, or the iteration limit. Requires the current basis to
// be dual feasible; every pivot preserves dual feasibility by the
// min-ratio rule.
func (r *revised) dualIterate(ctx context.Context, feasTol float64) (feasible, abandon bool, err error) {
	st := r.st
	lim := int32(st.n + st.m)
	limit := iterLimit(st.m, st.n)
	tol := eps * (1 + st.scale)
	stall := 0
	window := 4 * (st.m + st.n)
	lastObj := r.phaseObj()

	for iter := 0; iter < limit; iter++ {
		if err := ctx.Err(); err != nil {
			return false, false, err
		}
		// Leaving row: the most negative basic value.
		leave := -1
		worst := -feasTol
		for i, v := range r.xB {
			if v < worst {
				worst = v
				leave = i
			}
		}
		if leave < 0 {
			return true, false, nil
		}

		// rho = B^-T e_leave is the leaving row of B^-1; alpha_j =
		// rho·A_j is that row of the transformed column j.
		r.c[leave] = 1
		r.lu.btran(r.c, r.y2) // rho in y2
		r.duals()             // y = B^-T cB

		enter := int32(-1)
		var bestRatio float64
		for id := int32(0); id < lim; id++ {
			if r.where[id] >= 0 || !st.eligible(id) {
				continue
			}
			alpha := st.colDot(r.y2, id)
			if alpha >= -ratioEps {
				continue
			}
			d := st.cost(id, false) - st.colDot(r.y, id)
			if d < 0 {
				d = 0 // dual-feasible up to roundoff
			}
			ratio := d / -alpha
			if enter < 0 || ratio < bestRatio-ratioEps ||
				(ratio < bestRatio+ratioEps && id < enter) {
				enter = id
				bestRatio = ratio
			}
		}
		if enter < 0 {
			// No negative entry in a row with negative basic value:
			// that row certifies primal infeasibility.
			return false, false, nil
		}

		r.ftranCol(enter)
		if err := r.pivot(int32(leave), enter, false); err != nil {
			return false, false, err
		}

		// The dual objective is nondecreasing; a long run of degenerate
		// (zero-ratio) pivots risks cycling, and a cold solve is both
		// safe and cheap enough to be the better escape.
		if cur := r.phaseObj(); cur > lastObj+tol {
			lastObj = cur
			stall = 0
		} else {
			stall++
			if stall > window {
				return false, true, nil
			}
		}
	}
	return false, false, iterLimitError(2, r.pivots, st.m, st.n)
}
