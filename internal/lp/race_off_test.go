//go:build !race

package lp

// raceEnabled reports whether the race detector is compiled in. See
// race_on_test.go for why pool-reuse assertions relax under -race.
const raceEnabled = false
