package lp

import (
	"context"
	"math"
)

// Canonical column-id space shared by the revised solver, the warm
// start Basis encoding and the dense oracle's basis export. For a
// problem with n structural variables and m rows:
//
//	[0, n)        structural variable j
//	[n, n+m)      slack/surplus of row id-n (only inequality rows own one)
//	[n+m, n+2m)   artificial of row id-n-m
//
// Ids are stable across re-assemblies of problems with the same shape
// (same n, m and per-row relations), which is what makes a Basis from
// one solve installable into the next solve of an edited program.

// store is the sparse standard-form view of a Problem: rows normalized
// to nonnegative RHS, structural columns in compressed sparse column
// (CSC) form, slack and artificial columns represented implicitly
// (they are ±unit vectors). Nothing here is mutated after assembly.
type store struct {
	m, n int

	// Structural columns, CSC over normalized rows.
	colPtr []int32
	rowIdx []int32
	vals   []float64

	obj []float64 // structural objective coefficients (phase 2)
	rhs []float64 // normalized RHS, >= 0

	rowSign   []float64 // +1 if row kept its sign, -1 if multiplied by -1
	slackSign []float64 // per row after normalization: +1 LE, -1 GE, 0 EQ

	// colTol holds the per-structural-column optimality tolerance (the
	// same scheme as the dense tableau: reduced costs are judged
	// against the magnitude of their own column, so wide dynamic
	// ranges don't cause premature optimality). Slack and artificial
	// columns use the bare eps, matching the dense solver.
	colTol []float64

	scale float64 // magnitude scale of the problem for tolerances
	nnz   int     // structural nonzeros
}

// assemble builds the store from a problem into the arena's store
// slot, reusing its buffers. Large programs are assembled in O(nnz);
// the context is polled every few rows so cancellation stays prompt.
func assemble(ctx context.Context, p *Problem, ar *arena) (*store, error) {
	m := len(p.rows)
	n := len(p.names)
	st := &ar.st
	st.m, st.n = m, n
	st.obj = growF64(ar, &st.obj, n)
	st.rhs = growF64(ar, &st.rhs, m)
	st.rowSign = growF64(ar, &st.rowSign, m)
	st.slackSign = growF64(ar, &st.slackSign, m)
	st.colPtr = growI32(ar, &st.colPtr, n+1)
	st.scale = 1
	copy(st.obj, p.obj)

	// Pass 1: accumulate repeated terms within each row, count column
	// entries, and record normalization. Row entries are merged through
	// a stamped dense workspace so repeats cost O(1); the stamp and
	// count workspaces are zeroed on reuse (stale stamps from an
	// earlier solve could collide with this solve's row marks).
	acc := growF64(ar, &ar.acc, n)
	stamp := growInts(ar, &ar.stamp, n)
	counts := growI32(ar, &ar.counts, n)
	for i := 0; i < n; i++ {
		stamp[i] = 0
		counts[i] = 0
	}
	ents := ar.ents[:0]
	for i, r := range p.rows {
		if i&127 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		sign := 1.0
		rhs := r.RHS
		rel := r.Rel
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		st.rowSign[i] = sign
		st.rhs[i] = rhs
		switch rel {
		case LE:
			st.slackSign[i] = 1
		case GE:
			st.slackSign[i] = -1
		default:
			st.slackSign[i] = 0
		}
		if rhs > st.scale {
			st.scale = rhs
		}
		mark := i + 1
		for _, t := range r.Terms {
			if stamp[t.Var] != mark {
				stamp[t.Var] = mark
				acc[t.Var] = 0
			}
			acc[t.Var] += sign * t.Coef
		}
		for _, t := range r.Terms {
			if stamp[t.Var] != mark {
				continue // already emitted for this row
			}
			stamp[t.Var] = -mark // emitted marker
			v := acc[t.Var]
			if v == 0 {
				continue
			}
			if a := math.Abs(v); a > st.scale {
				st.scale = a
			}
			ents = append(ents, rowEnt{row: int32(i), col: int32(t.Var), coef: v})
			counts[t.Var]++
		}
	}

	ar.ents = ents // retain grown capacity for the next solve

	// Pass 2: prefix sums and CSC fill (entries arrive row-major, so
	// each column's rows end up sorted ascending).
	var total int32
	for j := 0; j < n; j++ {
		st.colPtr[j] = total
		total += counts[j]
	}
	st.colPtr[n] = total
	st.nnz = int(total)
	st.rowIdx = growI32(ar, &st.rowIdx, int(total))
	st.vals = growF64(ar, &st.vals, int(total))
	next := growI32(ar, &ar.next, n)
	copy(next, st.colPtr[:n])
	for _, e := range ents {
		k := next[e.col]
		st.rowIdx[k] = e.row
		st.vals[k] = e.coef
		next[e.col] = k + 1
	}

	// Per-column tolerances from column magnitudes and objective.
	st.colTol = growF64(ar, &st.colTol, n)
	for j := 0; j < n; j++ {
		if j&127 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		mx := 1.0
		for k := st.colPtr[j]; k < st.colPtr[j+1]; k++ {
			if v := math.Abs(st.vals[k]); v > mx {
				mx = v
			}
		}
		if v := math.Abs(st.obj[j]); v > mx {
			mx = v
		}
		st.colTol[j] = eps * mx
	}
	return st, nil
}

// numCols returns the size of the canonical column-id space.
func (st *store) numCols() int32 { return int32(st.n + 2*st.m) }

// isStructural / isSlack / isArtificial classify a canonical id.
func (st *store) isArtificial(id int32) bool { return int(id) >= st.n+st.m }

// slackRow returns the owning row of a slack id.
func (st *store) slackRow(id int32) int32 { return id - int32(st.n) }

// artRow returns the owning row of an artificial id.
func (st *store) artRow(id int32) int32 { return id - int32(st.n+st.m) }

// tol returns the optimality tolerance of a column.
func (st *store) tol(id int32) float64 {
	if int(id) < st.n {
		return st.colTol[id]
	}
	return eps
}

// cost returns the column's objective coefficient under the given
// phase: phase 1 charges artificials 1, phase 2 charges structural
// columns their problem cost.
func (st *store) cost(id int32, phase1 bool) float64 {
	if phase1 {
		if st.isArtificial(id) {
			return 1
		}
		return 0
	}
	if int(id) < st.n {
		return st.obj[id]
	}
	return 0
}

// colDot returns y·A_col for a dense row-indexed vector y.
func (st *store) colDot(y []float64, id int32) float64 {
	if int(id) < st.n {
		var s float64
		for k := st.colPtr[id]; k < st.colPtr[id+1]; k++ {
			s += y[st.rowIdx[k]] * st.vals[k]
		}
		return s
	}
	if st.isArtificial(id) {
		return y[st.artRow(id)]
	}
	r := st.slackRow(id)
	return y[r] * st.slackSign[r]
}

// scatterCol adds the column into a dense row-indexed vector.
func (st *store) scatterCol(id int32, out []float64) {
	if int(id) < st.n {
		for k := st.colPtr[id]; k < st.colPtr[id+1]; k++ {
			out[st.rowIdx[k]] += st.vals[k]
		}
		return
	}
	if st.isArtificial(id) {
		out[st.artRow(id)]++
		return
	}
	r := st.slackRow(id)
	out[r] += st.slackSign[r]
}

// appendCol appends the column's sparse entries to (idx, vals),
// returning the grown slices (used when gathering basis columns for
// LU refactorization).
func (st *store) appendCol(id int32, idx []int32, vals []float64) ([]int32, []float64) {
	if int(id) < st.n {
		for k := st.colPtr[id]; k < st.colPtr[id+1]; k++ {
			idx = append(idx, st.rowIdx[k])
			vals = append(vals, st.vals[k])
		}
		return idx, vals
	}
	if st.isArtificial(id) {
		return append(idx, st.artRow(id)), append(vals, 1)
	}
	r := st.slackRow(id)
	return append(idx, r), append(vals, st.slackSign[r])
}

// colNnz returns the column's nonzero count (fill heuristic for the
// LU column ordering).
func (st *store) colNnz(id int32) int {
	if int(id) < st.n {
		return int(st.colPtr[id+1] - st.colPtr[id])
	}
	return 1
}

// eligible reports whether a column may enter the basis: structural
// columns and slack columns of inequality rows. Artificial columns may
// only be basic leftovers from phase 1 and never re-enter.
func (st *store) eligible(id int32) bool {
	if int(id) < st.n {
		return true
	}
	if st.isArtificial(id) {
		return false
	}
	return st.slackSign[st.slackRow(id)] != 0
}
