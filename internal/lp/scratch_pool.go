//go:build !noscratch

package lp

import "sync"

// arenaPool recycles solve arenas across solves. Build with
// -tags noscratch to disable pooling (every solve on a fresh arena)
// for differential testing of the bit-identity contract.
var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// poolEnabled reports the build flavor to differential tests.
const poolEnabled = true

// getArena acquires a solve arena, recording whether it is a recycled
// one and zeroing the per-solve growth counter.
func getArena() *arena {
	a := arenaPool.Get().(*arena)
	a.reused = a.used
	a.used = true
	a.grows = 0
	return a
}

// release returns the arena to the pool. Callers must not retain any
// view into arena memory past this point.
func (a *arena) release() { arenaPool.Put(a) }
