package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// smoLikeProblem builds a small SMO-shaped program: minimize tc
// subject to GE propagation-style rows and LE setup-style rows whose
// RHS values a sweep would patch.
func smoLikeProblem(nv int, rng *rand.Rand) *Problem {
	p := &Problem{}
	tc := p.AddVar("tc", 1)
	vars := make([]int, nv)
	for i := range vars {
		vars[i] = p.AddVar("d", 0)
	}
	for i, v := range vars {
		// d_i + tc >= rhs (propagation-like)
		p.AddConstraint("ge", []Term{{v, 1}, {tc, 1}}, GE, 10+20*rng.Float64())
		// d_i - tc <= rhs (setup-like)
		p.AddConstraint("le", []Term{{v, 1}, {tc, -1}}, LE, 5+10*rng.Float64())
		if i > 0 {
			p.AddConstraint("chain", []Term{{v, 1}, {vars[i-1], -1}}, LE, 3+rng.Float64())
		}
	}
	return p
}

func sameSolution(t *testing.T, tag string, got, want *Solution) {
	t.Helper()
	if got.Status != want.Status {
		t.Fatalf("%s: status %v, want %v", tag, got.Status, want.Status)
	}
	if got.Status != Optimal {
		return
	}
	if got.Obj != want.Obj {
		t.Errorf("%s: obj %v != %v", tag, got.Obj, want.Obj)
	}
	for j := range want.X {
		if got.X[j] != want.X[j] {
			t.Fatalf("%s: X[%d] = %v, want %v", tag, j, got.X[j], want.X[j])
		}
	}
	for i := range want.Dual {
		if got.Dual[i] != want.Dual[i] {
			t.Fatalf("%s: Dual[%d] = %v, want %v", tag, i, got.Dual[i], want.Dual[i])
		}
	}
	for i := range want.Slack {
		if got.Slack[i] != want.Slack[i] {
			t.Fatalf("%s: Slack[%d] = %v, want %v", tag, i, got.Slack[i], want.Slack[i])
		}
	}
}

// TestSolveBatchMatchesWarmSolves checks the batched fast path against
// its specification: every variant solution must be bit-identical to a
// warm-started individual solve of the patched problem (modulo the
// documented missing RHSRange).
func TestSolveBatchMatchesWarmSolves(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p := smoLikeProblem(3+rng.Intn(6), rng)
		m := len(p.rows)

		var variants [][]RHSPatch
		for v := 0; v < 12; v++ {
			var patches []RHSPatch
			for n := 1 + rng.Intn(2); n > 0; n-- {
				row := rng.Intn(m)
				patches = append(patches, RHSPatch{Row: row, RHS: p.rows[row].RHS + 30*rng.Float64() - 10})
			}
			variants = append(variants, patches)
		}

		base, outs, err := SolveBatch(ctx, p, variants, nil)
		if err != nil {
			t.Fatal(err)
		}
		want0, err := SolveCtx(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, "base", base, want0)

		warm := base.Basis()
		for vi, patches := range variants {
			pv := patchedProblem(p, patches)
			want, err := SolveCtxFrom(ctx, pv, warm)
			if err != nil {
				t.Fatal(err)
			}
			sameSolution(t, "variant", outs[vi], want)
		}
	}
}

// TestSolveBatchSignFlip forces patches that cross an RHS sign change
// (which alters row normalization) and checks the fallback still
// matches individual solves.
func TestSolveBatchSignFlip(t *testing.T) {
	ctx := context.Background()
	p := &Problem{}
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 2)
	p.AddConstraint("a", []Term{{x, 1}, {y, 1}}, GE, 4)
	p.AddConstraint("b", []Term{{x, 1}, {y, -1}}, LE, -1) // negative base RHS
	variants := [][]RHSPatch{
		{{Row: 1, RHS: 2}},  // sign flip: fallback
		{{Row: 1, RHS: -3}}, // sign preserved: batched
		{{Row: 0, RHS: -2}}, // sign flip on row 0
	}
	base, outs, err := SolveBatch(ctx, p, variants, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm := base.Basis()
	for vi, patches := range variants {
		want, err := SolveCtxFrom(ctx, patchedProblem(p, patches), warm)
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, "variant", outs[vi], want)
	}
}

// TestSolveBatchInfeasibleVariant drives one variant infeasible and
// checks it reports Infeasible with a Farkas ray while its siblings
// stay optimal.
func TestSolveBatchInfeasibleVariant(t *testing.T) {
	ctx := context.Background()
	p := &Problem{}
	x := p.AddVar("x", 1)
	p.AddConstraint("lo", []Term{{x, 1}}, GE, 1)
	p.AddConstraint("hi", []Term{{x, 1}}, LE, 10)
	variants := [][]RHSPatch{
		{{Row: 0, RHS: 20}}, // x >= 20 contradicts x <= 10
		{{Row: 0, RHS: 5}},
	}
	_, outs, err := SolveBatch(ctx, p, variants, nil)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Status != Infeasible {
		t.Fatalf("variant 0 status %v, want Infeasible", outs[0].Status)
	}
	if outs[0].FarkasRay == nil {
		t.Error("infeasible variant missing Farkas ray")
	}
	if outs[1].Status != Optimal || outs[1].X[0] != 5 {
		t.Errorf("variant 1 = %+v, want optimal x=5", outs[1])
	}
}

// TestSolveBatchBadRow checks the programming-error contract.
func TestSolveBatchBadRow(t *testing.T) {
	p := &Problem{}
	p.AddVar("x", 1)
	p.AddConstraint("r", []Term{{0, 1}}, GE, 1)
	if _, _, err := SolveBatch(context.Background(), p, [][]RHSPatch{{{Row: 5, RHS: 1}}}, nil); err == nil {
		t.Fatal("out-of-range patch row accepted")
	}
}

// TestScratchReuseBitIdentical solves the same programs repeatedly and
// demands bit-identical solutions whether the arena is fresh (first
// lap) or recycled, including across interleaved shapes that force the
// arena to rebind to different sizes.
func TestScratchReuseBitIdentical(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	probs := []*Problem{
		smoLikeProblem(4, rng),
		smoLikeProblem(17, rng),
		smoLikeProblem(2, rng),
	}
	var first []*Solution
	reuses := 0
	for lap := 0; lap < 4; lap++ {
		for pi, p := range probs {
			sol, err := SolveCtx(ctx, p)
			if err != nil {
				t.Fatal(err)
			}
			if lap == 0 {
				first = append(first, sol)
				continue
			}
			sameSolution(t, "reuse", sol, first[pi])
			for i := range first[pi].RHSRange {
				if sol.RHSRange[i] != first[pi].RHSRange[i] {
					t.Fatalf("RHSRange[%d] = %v, want %v", i, sol.RHSRange[i], first[pi].RHSRange[i])
				}
			}
			if sol.Stats.ScratchReused {
				reuses++
			} else if poolEnabled && !raceEnabled {
				// Under -race, sync.Pool drops a fraction of Puts at
				// random (see race_on_test.go), so only the aggregate
				// check below applies there.
				t.Error("repeat solve did not reuse a scratch arena")
			}
		}
	}
	if poolEnabled && reuses == 0 {
		t.Error("no repeat solve ever reused a scratch arena")
	}
}

// TestFtranNMatchesFtran drives the batched kernel directly against
// serial ftran calls on the final factorization of a solved program.
func TestFtranNMatchesFtran(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := smoLikeProblem(9, rng)
	ar := getArena()
	defer ar.release()
	sol, r, err := solveRevisedArena(context.Background(), p, nil, ar)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("setup solve: %v %v", sol.Status, err)
	}
	m := r.st.m
	const k = 5
	vecs := ar.batchVectors(3*k, m)
	vs, outs, zs := vecs[:k], vecs[k:2*k], vecs[2*k:]
	ref := make([][]float64, k)
	for j := 0; j < k; j++ {
		ref[j] = make([]float64, m)
		serial := make([]float64, m)
		for i := 0; i < m; i++ {
			vs[j][i] = rng.NormFloat64()
			serial[i] = vs[j][i]
		}
		r.lu.ftran(serial, ref[j])
		for i := 0; i < m; i++ {
			serial[i] = vs[j][i] // rebuild, ftran consumed it
		}
		copy(vs[j], serial)
	}
	r.lu.ftranN(vs, outs, zs)
	for j := 0; j < k; j++ {
		for i := 0; i < m; i++ {
			if outs[j][i] != ref[j][i] {
				t.Fatalf("ftranN[%d][%d] = %v, want %v", j, i, outs[j][i], ref[j][i])
			}
		}
		for i := 0; i < m; i++ {
			if vs[j][i] != 0 {
				t.Fatalf("ftranN left v[%d][%d] = %v, want 0", j, i, vs[j][i])
			}
		}
	}
	if math.IsNaN(sol.Obj) {
		t.Fatal("unexpected NaN objective")
	}
}
