// Warm-start behaviour of the revised simplex against real MinTc LPs:
// a basis from one solve must cut a same-shape re-solve to a handful of
// dual pivots without moving the optimum, and unusable bases must fall
// back to a cold solve silently.
package lp_test

import (
	"context"
	"math"
	"testing"

	"mintc/internal/circuits"
	"mintc/internal/core"
	"mintc/internal/lp"
)

// buildGaAs returns the GaAs MIPS MinTc LP with path 0 scaled by f.
func buildGaAs(t *testing.T, f float64) *lp.Problem {
	t.Helper()
	c := circuits.GaAsMIPS()
	if f != 1 {
		c.SetPathDelay(0, c.Paths()[0].Delay*f)
	}
	p, _, _ := core.BuildLP(c, core.Options{})
	return p
}

// TestWarmStartFewerPivots is the acceptance property of the warm-start
// API: after an RHS-only edit (one delay scaled 5%), re-solving from
// the previous optimal basis must report WarmStarted, agree with the
// cold solve's optimum to 1e-9, and use at least 5x fewer pivots.
func TestWarmStartFewerPivots(t *testing.T) {
	ctx := context.Background()
	first, err := lp.SolveCtx(ctx, buildGaAs(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != lp.Optimal {
		t.Fatalf("status %v", first.Status)
	}
	basis := first.Basis()
	if basis == nil {
		t.Fatal("optimal solve returned nil basis")
	}

	edited := buildGaAs(t, 1.05)
	cold, err := lp.SolveCtx(ctx, edited)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := lp.SolveCtxFrom(ctx, buildGaAs(t, 1.05), basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != lp.Optimal {
		t.Fatalf("warm status %v", warm.Status)
	}
	if !warm.Stats.WarmStarted {
		t.Fatal("warm solve did not report WarmStarted")
	}
	if d := math.Abs(warm.Obj - cold.Obj); d > 1e-9 {
		t.Fatalf("warm optimum %.15g != cold %.15g (diff %.3g)", warm.Obj, cold.Obj, d)
	}
	if warm.Pivots*5 > cold.Pivots {
		t.Fatalf("warm solve took %d pivots, cold %d; want >=5x reduction", warm.Pivots, cold.Pivots)
	}
	if warm.Stats.WarmPivots != warm.Pivots {
		t.Fatalf("WarmPivots=%d but Pivots=%d", warm.Stats.WarmPivots, warm.Pivots)
	}
}

// TestWarmStartIdenticalProblemZeroWork: re-solving the unchanged
// problem from its own optimal basis must not pivot at all.
func TestWarmStartIdenticalProblemZeroWork(t *testing.T) {
	ctx := context.Background()
	first, err := lp.SolveCtx(ctx, buildGaAs(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := lp.SolveCtxFrom(ctx, buildGaAs(t, 1), first.Basis())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.WarmStarted || warm.Pivots != 0 {
		t.Fatalf("unchanged re-solve: WarmStarted=%v Pivots=%d, want true/0",
			warm.Stats.WarmStarted, warm.Pivots)
	}
	if d := math.Abs(warm.Obj - first.Obj); d > 1e-12 {
		t.Fatalf("unchanged re-solve moved the optimum by %g", d)
	}
}

// TestWarmStartUnusableBasisFallsBack: nil and shape-mismatched bases
// must silently cold-start and still reach the optimum.
func TestWarmStartUnusableBasisFallsBack(t *testing.T) {
	ctx := context.Background()
	p := buildGaAs(t, 1)
	cold, err := lp.SolveCtx(ctx, buildGaAs(t, 1))
	if err != nil {
		t.Fatal(err)
	}

	// A basis from a different-shape program.
	small := &lp.Problem{}
	x := small.AddVar("x", 1)
	small.AddConstraint("", []lp.Term{{Var: x, Coef: 1}}, lp.GE, 1)
	ssol, err := lp.SolveCtx(ctx, small)
	if err != nil {
		t.Fatal(err)
	}

	for name, b := range map[string]*lp.Basis{"nil": nil, "mismatched": ssol.Basis()} {
		got, err := lp.SolveCtxFrom(ctx, p, b)
		if err != nil {
			t.Fatalf("%s basis: %v", name, err)
		}
		if got.Stats.WarmStarted {
			t.Fatalf("%s basis: solve claims WarmStarted", name)
		}
		if d := math.Abs(got.Obj - cold.Obj); d > 1e-9 {
			t.Fatalf("%s basis: optimum %.15g != cold %.15g", name, got.Obj, cold.Obj)
		}
	}
}

// TestWarmStartInfeasibleEdit: pushing a row's RHS beyond feasibility
// must yield Infeasible from the warm path, agreeing with a cold solve.
func TestWarmStartInfeasibleEdit(t *testing.T) {
	ctx := context.Background()
	p := &lp.Problem{}
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 2)
	p.AddConstraint("lo", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.GE, 2)
	p.AddConstraint("hi", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 10)
	first, err := lp.SolveCtx(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != lp.Optimal {
		t.Fatalf("status %v", first.Status)
	}

	edited := &lp.Problem{}
	x = edited.AddVar("x", 1)
	y = edited.AddVar("y", 2)
	edited.AddConstraint("lo", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.GE, 20)
	edited.AddConstraint("hi", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 10)
	warm, err := lp.SolveCtxFrom(ctx, edited, first.Basis())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != lp.Infeasible {
		t.Fatalf("warm status %v, want Infeasible", warm.Status)
	}
}
