// Package decomp solves the minimum-cycle-time problem by latch-graph
// SCC decomposition: per-component subproblems solved independently
// (and cached, and re-solved incrementally), then coupled by one
// global witness-jumping pass that certifies — or repairs — the
// combined answer against the full constraint system.
//
// The paper's constraint system couples synchronizers only along
// combinational paths, so every latch-graph cycle lies inside exactly
// one strongly connected component (core.Partition). A component's
// subsystem — the clock rows plus the members' rows and the
// intra-component arcs — is a subset of the full system's rows, which
// makes its optimum Tc_i a sound lower bound on the circuit's optimum:
// any globally feasible point restricts to a subsystem-feasible point.
// The converse is NOT true: max_i Tc_i is not the answer, because
// constraint-graph cycles may thread through the shared clock nodes
// across components (a feedforward pipeline with all-singleton
// components still couples stages through phase separations). The
// global phase closes that gap exactly: starting the full-graph Lawler
// iteration at the candidate max_i Tc_i, a feasible first probe proves
// the candidate optimal (feasible + lower bound = optimal), and an
// infeasible one jumps witness by witness to the true optimum — the
// identical fixpoint the monolithic solver reaches, so decomposition
// never changes the answer, only the work.
//
// The work is where the payoff is: component subproblems solve in
// parallel, single-latch acyclic components collapse to a closed-form
// bound with no LP and no probe, unchanged components are answered
// from a digest-keyed cache (State), and a delay edit dirties exactly
// the component containing the edited arc — the incremental re-solve
// the session layer and the sweep driver exploit.
package decomp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mintc/internal/core"
	"mintc/internal/lp"
	"mintc/internal/mcr"
	"mintc/internal/obs"
)

// Config tunes the decomposed solver. The zero value is ready to use.
type Config struct {
	// Workers bounds the component-solving pool (0 = GOMAXPROCS).
	Workers int
	// LPCutoff is the component size (member count) up to which the
	// subproblem is solved by the sparse simplex on the component LP
	// (warm-started from the component's cached base basis); larger
	// components use the subsystem min-cycle-ratio solver, whose
	// witness cycles double as optimality certificates. 0 selects the
	// default; negative disables the LP backend entirely.
	LPCutoff int
}

// DefaultLPCutoff is the default component-size ceiling for the LP
// backend. Small components produce small LPs where a warm dual
// simplex re-solve beats graph assembly; past a few dozen members the
// probe-based solver wins and also yields witness cycles.
const DefaultLPCutoff = 48

func (cfg Config) workers() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (cfg Config) lpCutoff() int {
	switch {
	case cfg.LPCutoff > 0:
		return cfg.LPCutoff
	case cfg.LPCutoff < 0:
		return 0
	}
	return DefaultLPCutoff
}

// Result is the outcome of a decomposed solve. Tc, Schedule and D
// match the monolithic solvers'; the remaining fields report the
// decomposition's shape and how much of it was actually re-solved.
type Result struct {
	// Tc is the minimum feasible cycle time (or the pinned FixedTc).
	Tc float64
	// Schedule is the least optimal clock schedule, extracted by the
	// global coupling phase over the full constraint graph.
	Schedule *core.Schedule
	// D holds every synchronizer's departure time.
	D []float64
	// CriticalArcs is the machine-checkable optimality witness: a
	// constraint cycle of ratio Tc, produced by the global phase when
	// it jumps, or inherited from the binding component (including the
	// synthesized setup loop of a closed-form singleton) when the
	// candidate is certified on the first probe. Empty when no
	// ratio-bearing cycle binds (Tc forced to 0 or pinned by FixedTc).
	CriticalArcs []mcr.CycleArc
	// CriticalRatio is A/(−B) of that cycle (== Tc when it binds).
	CriticalRatio float64
	// Components is the number of latch-graph components.
	Components int
	// Resolved counts components whose subproblem actually ran this
	// solve; the rest were closed-form singletons or cache hits.
	Resolved int
	// FastPaths counts closed-form singleton components.
	FastPaths int
	// CompTc holds every component's subsystem optimum (the lower
	// bounds whose max seeded the global phase), indexed by component.
	CompTc []float64
	// Probes counts the global phase's Bellman–Ford probes.
	Probes int
	// ProbeRounds counts worklist relaxation rounds across every probe
	// of the solve (component and coupling), ProbeParallelRounds the
	// subset that actually fanned out across more than one worker, and
	// WarmPotentialHits how many probes consumed persisted potentials
	// (State warm starts) instead of relaxing from scratch.
	ProbeRounds         int64
	ProbeParallelRounds int64
	WarmPotentialHits   int64
}

// compAnswer is one component subproblem's outcome: the subsystem
// optimum and, when a ratio-bearing cycle binds it, the witness cycle
// (whose node names are shared with the full constraint graph, so it
// certifies the global answer whenever the candidate wins).
type compAnswer struct {
	tc    float64
	ratio float64
	arcs  []mcr.CycleArc
}

// Solve computes the circuit's minimum cycle time over the overlay's
// delays by component decomposition. st may be nil (no caching); a
// shared *State memoizes per-component answers across solves, keyed by
// each component's delay digest, so repeated solves after localized
// edits re-solve only the dirty components. The answer is the same as
// the monolithic solvers' (core.MinTc / mcr.Solve) up to solver
// tolerance; only the work differs.
func Solve(ctx context.Context, ov core.DelayOverlay, opts core.Options, cfg Config, st *State) (*Result, error) {
	if !ov.Valid() {
		return nil, fmt.Errorf("decomp: zero DelayOverlay (start from Compiled.Overlay)")
	}
	cc := ov.Base()
	if err := opts.ValidateFor(cc.Circuit()); err != nil {
		return nil, err
	}
	if !opts.Objective.IsMinTc() {
		// The component lower-bound/coupling argument is a min-Tc
		// argument; schedule objectives solve monolithically via the LP.
		return nil, fmt.Errorf("decomp: objective %s is not supported (min-Tc only)", opts.Objective)
	}
	rec := obs.From(ctx)
	if rec == nil {
		// Result reports probe-round/warm-hit telemetry as counter
		// deltas, so the solve always runs against a live recorder.
		rec = obs.New()
		ctx = obs.With(ctx, rec)
	}
	rounds0 := rec.Get(obs.ProbeRounds)
	par0 := rec.Get(obs.ProbeParallelRounds)
	warm0 := rec.Get(obs.WarmPotentialHits)
	pt := cc.Partition()
	nc := pt.NumComponents()
	rec.Add(obs.ComponentsTotal, int64(nc))

	var answers []compAnswer
	var resolved, fastPaths int64
	err := rec.Phase(ctx, "decomp.components", func(ctx context.Context) error {
		var err error
		answers, resolved, fastPaths, err = solveAllComponents(ctx, ov, opts, cfg, st)
		return err
	})
	if err != nil {
		return nil, err
	}
	rec.Add(obs.ComponentsResolved, resolved)
	rec.Add(obs.DecompFastPaths, fastPaths)

	// Candidate lower bound and the binding component's witness (ties
	// break to the lowest component for determinism).
	cand, arg := 0.0, -1
	compTc := make([]float64, nc)
	for ci := range answers {
		compTc[ci] = answers[ci].tc
		if answers[ci].tc > cand {
			cand, arg = answers[ci].tc, ci
		}
	}

	res := &Result{
		Components: nc,
		Resolved:   int(resolved),
		FastPaths:  int(fastPaths),
		CompTc:     compTc,
	}
	err = rec.Phase(ctx, "decomp.couple", func(ctx context.Context) error {
		gres, err := couplingSolve(ctx, ov, opts, cfg, st, cand)
		if err != nil {
			return err
		}
		res.Tc = gres.Tc
		res.Schedule = gres.Schedule
		res.D = gres.D
		res.Probes = gres.Probes
		res.CriticalArcs = gres.CriticalArcs
		res.CriticalRatio = gres.CriticalRatio
		if len(res.CriticalArcs) == 0 && arg >= 0 && len(answers[arg].arcs) > 0 &&
			ratioMatches(answers[arg].ratio, res.Tc) {
			// The candidate was certified on the first probe, so the
			// global phase never saw a witness — but the binding
			// component's cycle is one: its arcs are constraints of the
			// full graph and its ratio equals the answer.
			res.CriticalArcs = answers[arg].arcs
			res.CriticalRatio = answers[arg].ratio
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.ProbeRounds = rec.Get(obs.ProbeRounds) - rounds0
	res.ProbeParallelRounds = rec.Get(obs.ProbeParallelRounds) - par0
	res.WarmPotentialHits = rec.Get(obs.WarmPotentialHits) - warm0
	return res, nil
}

// couplingSolve runs the global coupling pass from the candidate lower
// bound. With a shared State (and no pinned FixedTc, which State does
// not key on) the pass reuses one persistent full-graph solver: the
// constraint graph and its CSR scratch are compiled once per State and
// reconciled against each overlay's edit set in O(edits), and every
// pass warm-starts from the base overlay's converged potentials — the
// full-graph analogue of the component caches' base-basis rule. Seeds
// only ever come from that base fixpoint (a pure function of the
// snapshot and options), never from whatever an arbitrary earlier
// overlay left behind, so a solve's outcome does not depend on which
// overlays the State served before it.
func couplingSolve(ctx context.Context, ov core.DelayOverlay, opts core.Options, cfg Config, st *State, cand float64) (*mcr.Result, error) {
	if st == nil || opts.FixedTc != 0 {
		g, err := mcr.NewSolverOverlay(ov, opts)
		if err != nil {
			return nil, err
		}
		g.SetProbeWorkers(cfg.Workers)
		return g.SolveFromCtx(ctx, cand)
	}
	st.coupMu.Lock()
	defer st.coupMu.Unlock()
	base := ov.Base().Overlay()
	if st.coupler == nil {
		g, err := mcr.NewSolverOverlay(base, opts)
		if err != nil {
			return nil, err
		}
		st.coupler = g
	}
	g := st.coupler
	g.SetProbeWorkers(cfg.Workers)
	// Reconcile the solver's constants with this overlay: paths edited
	// by the previous pass return to base, then the overlay's own edits
	// apply (with its already-composed MinDelay clamps, hence
	// SetDelayMin rather than SetDelay).
	for _, p := range st.couplerEdits {
		g.SetDelayMin(int(p), base.Delay(int(p)), base.MinDelay(int(p)))
	}
	edits := ov.EditedPaths()
	for _, p := range edits {
		g.SetDelayMin(int(p), ov.Delay(int(p)), ov.MinDelay(int(p)))
	}
	st.couplerEdits = edits
	if st.couplerPot == nil {
		gres, err := g.SolveFromCtx(ctx, cand)
		if err != nil {
			return nil, err
		}
		if len(edits) == 0 {
			// A base-overlay pass just converged cold: its extraction
			// probe left the canonical least potentials, the anchor every
			// later pass warm-starts from.
			st.couplerPot = g.Potentials()
		}
		return gres, nil
	}
	g.SeedPotentials(st.couplerPot)
	return g.SolveFromWarmCtx(ctx, cand)
}

// ratioMatches reports that a component witness ratio equals the final
// answer to certificate tolerance (relative, as verify.CriticalCycle
// measures it).
func ratioMatches(ratio, tc float64) bool {
	d := ratio - tc
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+abs(tc))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// solveAllComponents answers every component subproblem across a
// bounded worker pool, returning per-component answers plus the
// resolved / fast-path tallies. Errors select deterministically (the
// lowest failing component wins) so concurrent runs report the same
// failure.
func solveAllComponents(ctx context.Context, ov core.DelayOverlay, opts core.Options, cfg Config, st *State) (answers []compAnswer, resolved, fastPaths int64, err error) {
	pt := ov.Base().Partition()
	nc := pt.NumComponents()
	answers = make([]compAnswer, nc)
	errs := make([]error, nc)
	workers := cfg.workers()
	if workers > nc {
		workers = nc
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var next int64
	var mu sync.Mutex // guards resolved/fastPaths
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var nRes, nFast int64
			for {
				ci := int(atomic.AddInt64(&next, 1)) - 1
				if ci >= nc {
					break
				}
				if ctx.Err() != nil {
					errs[ci] = ctx.Err()
					continue
				}
				ans, ran, err := solveComponent(ctx, ov, opts, cfg, st, ci)
				if err != nil {
					errs[ci] = err
					continue
				}
				answers[ci] = ans
				if ran {
					nRes++
				}
				if pt.Trivial(ci) {
					nFast++
				}
			}
			mu.Lock()
			resolved += nRes
			fastPaths += nFast
			mu.Unlock()
		}()
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, 0, 0, e
		}
	}
	return answers, resolved, fastPaths, nil
}

// solveComponent answers one component subproblem: closed form for
// trivial singletons, the cached answer when the component's delay
// digest is known, otherwise an actual subsystem solve (LP for small
// components, min-cycle-ratio for large ones). ran reports whether a
// solve actually executed (the Resolved metric).
func solveComponent(ctx context.Context, ov core.DelayOverlay, opts core.Options, cfg Config, st *State, ci int) (ans compAnswer, ran bool, err error) {
	cc := ov.Base()
	c := cc.Circuit()
	pt := cc.Partition()
	if pt.Trivial(ci) {
		// Closed form: no intra-component arc means no delay
		// dependence, so neither caching nor solving is worth it.
		sync := int(pt.Members(ci)[0])
		tc := core.TrivialComponentBound(c, opts, sync)
		ans = compAnswer{tc: tc, ratio: tc}
		if tc > 0 {
			ans.arcs = trivialWitness(c, sync, tc)
		}
		return ans, false, nil
	}
	dig := ov.ComponentDigest(ci)
	if st != nil {
		if cached, ok := st.lookup(dig); ok {
			return cached, false, nil
		}
	}
	// Per-component solves drop FixedTc: pinning the cycle time is a
	// property of the full system (the subsystem bound may legitimately
	// sit below the pin), enforced by the global coupling phase.
	compOpts := opts
	compOpts.FixedTc = 0
	cut := cfg.lpCutoff()
	if n := len(pt.Members(ci)); n <= cut {
		ans, err = solveComponentLP(ctx, ov, compOpts, st, ci, dig)
		if err == nil {
			if st != nil {
				st.store(dig, ans)
			}
			return ans, true, nil
		}
		if ctx.Err() != nil {
			return ans, true, err
		}
		// A degenerate LP outcome (infeasible, unbounded, lost basis)
		// falls through to the probe solver, which produces a typed
		// witness-cycle error that is valid for the full system.
	}
	s, err := mcr.NewComponentSolver(ov, compOpts, pt.Members(ci))
	if err != nil {
		return ans, true, err
	}
	baseDig := cc.Overlay().ComponentDigest(ci)
	var mres *mcr.Result
	if st != nil && dig != baseDig {
		// Edited re-solve: warm-start from the component's BASE
		// potentials, mirroring the LP path's base-basis rule (and
		// computing them on demand the same way) so the answer for a
		// digest stays a pure function of (snapshot, digest, options),
		// whatever overlays the State served before.
		pot := st.potentials(ci)
		if pot == nil {
			bs, berr := mcr.NewComponentSolver(cc.Overlay(), compOpts, pt.Members(ci))
			if berr != nil {
				return ans, true, berr
			}
			bres, berr := bs.MinTcFromCtx(ctx, 0)
			if berr != nil {
				return ans, true, berr
			}
			st.store(baseDig, compAnswer{tc: bres.Tc, ratio: bres.CriticalRatio, arcs: bres.CriticalArcs})
			st.storePotentials(ci, bs.Potentials())
			pot = st.potentials(ci)
		}
		s.SeedPotentials(pot)
		mres, err = s.MinTcFromWarmCtx(ctx, 0)
	} else {
		mres, err = s.MinTcFromCtx(ctx, 0)
		if err == nil && st != nil {
			st.storePotentials(ci, s.Potentials())
		}
	}
	if err != nil {
		return ans, true, err
	}
	ans = compAnswer{tc: mres.Tc, ratio: mres.CriticalRatio, arcs: mres.CriticalArcs}
	if st != nil {
		st.store(dig, ans)
	}
	return ans, true, nil
}

// solveComponentLP answers a small component through the sparse
// simplex. For determinism under concurrent cache sharing the warm
// start is always the component's BASE basis — the optimal basis of
// the component LP over the snapshot's own delays — never whichever
// basis some other overlay left behind: the answer for a digest is
// then a pure function of (snapshot, digest, options), independent of
// solve order, which is what lets State memoize it. The base basis is
// computed (and cached) on first need; RHS-only edits keep it dual
// feasible, so the warm re-solve is typically a handful of pivots.
func solveComponentLP(ctx context.Context, ov core.DelayOverlay, opts core.Options, st *State, ci int, dig uint64) (compAnswer, error) {
	cc := ov.Base()
	baseDig := cc.Overlay().ComponentDigest(ci)
	var warm *lp.Basis
	if st != nil && dig != baseDig {
		warm = st.basis(ci)
		if warm == nil {
			baseAns, b, err := solveCompLPCold(ctx, cc.Overlay(), opts, ci)
			if err != nil {
				return compAnswer{}, err
			}
			st.storeBasis(ci, b)
			st.store(baseDig, baseAns)
			warm = b
		}
	}
	prob, vm, _ := core.BuildLPComponent(cc, ov, opts, ci)
	sol, err := lp.SolveCtxFrom(ctx, prob, warm)
	if err != nil {
		return compAnswer{}, err
	}
	if sol.Status != lp.Optimal {
		return compAnswer{}, fmt.Errorf("decomp: component %d LP status %v", ci, sol.Status)
	}
	if st != nil && dig == baseDig {
		st.storeBasis(ci, sol.Basis())
	}
	return compAnswer{tc: sol.X[vm.Tc], ratio: sol.X[vm.Tc]}, nil
}

// solveCompLPCold solves a component LP over the snapshot's own delays
// from scratch, returning the answer and the optimal basis.
func solveCompLPCold(ctx context.Context, base core.DelayOverlay, opts core.Options, ci int) (compAnswer, *lp.Basis, error) {
	prob, vm, _ := core.BuildLPComponent(base.Base(), base, opts, ci)
	sol, err := lp.SolveCtx(ctx, prob)
	if err != nil {
		return compAnswer{}, nil, err
	}
	if sol.Status != lp.Optimal {
		return compAnswer{}, nil, fmt.Errorf("decomp: component %d base LP status %v", ci, sol.Status)
	}
	return compAnswer{tc: sol.X[vm.Tc], ratio: sol.X[vm.Tc]}, sol.Basis(), nil
}

// trivialWitness synthesizes the setup-loop witness of a closed-form
// latch singleton: u_i → e_p carries the setup row (A = bound), e_p →
// s_p the phase-width periodicity (B = −1), s_p → u_i the departure
// bound L3. The node names match the constraint-graph names the
// min-cycle-ratio builders use, so the cycle reads as a full-system
// certificate.
func trivialWitness(c *core.Circuit, sync int, bound float64) []mcr.CycleArc {
	p := c.Sync(sync).Phase
	u := "u." + c.SyncName(sync)
	e := "e." + c.PhaseName(p)
	s := "s." + c.PhaseName(p)
	return []mcr.CycleArc{
		{From: u, To: e, A: bound, B: 0},
		{From: e, To: s, A: 0, B: -1},
		{From: s, To: u, A: 0, B: 0},
	}
}
