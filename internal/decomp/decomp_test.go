package decomp

import (
	"context"
	"math"
	"testing"

	"mintc/internal/core"
	"mintc/internal/gen"
	"mintc/internal/mcr"
	"mintc/internal/obs"
	"mintc/internal/verify"
)

// relDiff is the relative difference |a−b|/(1+|b|), the measure every
// parity assertion uses (matching verify's residual convention).
func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Abs(b))
}

func ratioArcs(arcs []mcr.CycleArc) []verify.RatioArc {
	out := make([]verify.RatioArc, len(arcs))
	for i, a := range arcs {
		out[i] = verify.RatioArc{From: a.From, To: a.To, A: a.A, B: a.B}
	}
	return out
}

// optionVariants are the option sets the parity tests exercise: the
// plain problem, skew margins, hold-constrained design, and minimum
// phase widths/separations (the clock-only cycles the per-component
// bounds deliberately ignore).
func optionVariants() []core.Options {
	return []core.Options{
		{},
		{Skew: 0.3},
		{DesignForHold: true},
		{MinPhaseWidth: 4, MinSeparation: 0.5},
	}
}

// TestSolveParitySuite: the decomposed solve must agree with both
// monolithic solvers on every suite circuit under every option
// variant, and any witness cycle it reports must verify as an
// optimality certificate.
func TestSolveParitySuite(t *testing.T) {
	ctx := context.Background()
	for _, b := range gen.Suite() {
		for vi, opts := range optionVariants() {
			ref, refErr := mcr.Solve(b.Circuit, opts)
			cc, err := b.Circuit.Freeze()
			if err != nil {
				t.Fatalf("%s: Freeze: %v", b.Name, err)
			}
			res, err := Solve(ctx, cc.Overlay(), opts, Config{}, NewState())
			if refErr != nil {
				if err == nil {
					t.Errorf("%s/v%d: monolithic failed (%v) but decomposed returned Tc=%g", b.Name, vi, refErr, res.Tc)
				}
				continue
			}
			if err != nil {
				t.Errorf("%s/v%d: decomposed solve failed: %v", b.Name, vi, err)
				continue
			}
			if d := relDiff(res.Tc, ref.Tc); d > 1e-9 {
				t.Errorf("%s/v%d: Tc mismatch: decomp %.12g vs mcr %.12g (rel %.3g)", b.Name, vi, res.Tc, ref.Tc, d)
			}
			if lpRef, err := core.MinTc(b.Circuit, opts); err == nil {
				if d := relDiff(res.Tc, lpRef.Schedule.Tc); d > 1e-9 {
					t.Errorf("%s/v%d: Tc mismatch vs LP: decomp %.12g vs mlp %.12g (rel %.3g)", b.Name, vi, res.Tc, lpRef.Schedule.Tc, d)
				}
			}
			if len(res.CriticalArcs) > 0 {
				cert := verify.CriticalCycle(ratioArcs(res.CriticalArcs), res.Tc, 0)
				if !cert.Certified() {
					t.Errorf("%s/v%d: witness cycle failed verification: %v", b.Name, vi, cert.Failed())
				}
			}
			if res.Components < 1 || len(res.CompTc) != res.Components {
				t.Errorf("%s/v%d: malformed decomposition: %d components, %d bounds", b.Name, vi, res.Components, len(res.CompTc))
			}
			for ci, lo := range res.CompTc {
				if lo > res.Tc+1e-9*(1+res.Tc) {
					t.Errorf("%s/v%d: component %d bound %.12g exceeds answer %.12g", b.Name, vi, ci, lo, res.Tc)
				}
			}
		}
	}
}

// TestSolveFixedTcParity: a pinned cycle time must behave exactly as
// in the monolithic solver — accepted verbatim when feasible, rejected
// when below the minimum — even though per-component solves drop the
// pin.
func TestSolveFixedTcParity(t *testing.T) {
	ctx := context.Background()
	c := gen.Banks(3, 8, 1, 2, 30)
	cc, err := c.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mcr.Solve(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ok := core.Options{FixedTc: ref.Tc * 2}
	res, err := Solve(ctx, cc.Overlay(), ok, Config{}, nil)
	if err != nil {
		t.Fatalf("feasible FixedTc rejected: %v", err)
	}
	if res.Tc != ok.FixedTc {
		t.Errorf("FixedTc not pinned: got %g want %g", res.Tc, ok.FixedTc)
	}

	bad := core.Options{FixedTc: ref.Tc / 2}
	if _, err := Solve(ctx, cc.Overlay(), bad, Config{}, nil); err == nil {
		t.Error("FixedTc below the minimum was accepted")
	}
}

// banksWithCross builds the incremental-test circuit: three banks plus
// one cross-component feedforward arc from bank 0 to bank 1.
func banksWithCross(t *testing.T) (*core.Compiled, int) {
	t.Helper()
	c := gen.Banks(3, 8, 1, 2, 30)
	cross := c.AddPath(0, 9, 5)
	cc, err := c.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return cc, cross
}

// TestIncrementalResolve: with a shared State, a repeat solve resolves
// nothing, an intra-component edit resolves exactly the dirty
// component, and a cross-arc edit resolves none — while every answer
// stays in lockstep with the monolithic solver.
func TestIncrementalResolve(t *testing.T) {
	cc, cross := banksWithCross(t)
	pt := cc.Partition()
	if pt.NumComponents() != 3 {
		t.Fatalf("banks circuit has %d components, want 3", pt.NumComponents())
	}
	if pt.PathComp(cross) != -1 {
		t.Fatalf("cross arc classified as intra-component")
	}
	st := NewState()
	opts := core.Options{}
	ctx := context.Background()

	check := func(name string, ov core.DelayOverlay, wantResolved int) {
		t.Helper()
		res, err := Solve(ctx, ov, opts, Config{}, st)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Resolved != wantResolved {
			t.Errorf("%s: resolved %d components, want %d", name, res.Resolved, wantResolved)
		}
		ref, err := mcr.SolveCtx(ctx, ov.Materialize(), opts)
		if err != nil {
			t.Fatalf("%s: monolithic: %v", name, err)
		}
		if d := relDiff(res.Tc, ref.Tc); d > 1e-9 {
			t.Errorf("%s: Tc mismatch: decomp %.12g vs mcr %.12g", name, res.Tc, ref.Tc)
		}
	}

	base := cc.Overlay()
	check("base", base, 3)
	check("repeat", base, 0)
	// Path 4 is inside bank 0 (the first 8 ring arcs belong to it).
	dirty := base.With(4, 200)
	if comps, crossEdit := dirty.DirtyComponents(); crossEdit || len(comps) != 1 {
		t.Fatalf("DirtyComponents(With(4)) = %v, %v", comps, crossEdit)
	}
	check("intra-edit", dirty, 1)
	check("intra-edit-repeat", dirty, 0)
	check("cross-edit", base.With(cross, 300), 0)
	check("base-again", base, 0)
}

// TestObsCounters: the decomposition counters must land in the Stats
// snapshot under their wire names.
func TestObsCounters(t *testing.T) {
	cc, _ := banksWithCross(t)
	rec := obs.New()
	ctx := obs.With(context.Background(), rec)
	if _, err := Solve(ctx, cc.Overlay(), core.Options{}, Config{}, nil); err != nil {
		t.Fatal(err)
	}
	stats := rec.Snapshot()
	if got := stats.Counters["components_total"]; got != 3 {
		t.Errorf("components_total = %d, want 3", got)
	}
	if got := stats.Counters["components_resolved"]; got != 3 {
		t.Errorf("components_resolved = %d, want 3", got)
	}
}

// TestTrivialFastPath: a pure flip-flop pipeline is all singleton
// components — no subproblem may run, and the answer must still match
// the monolithic solver (the bound comes from clock cycles the global
// phase supplies).
func TestTrivialFastPath(t *testing.T) {
	c := gen.Pipeline(3, 12, 1, 2, func(i int) float64 { return float64(15 + 3*(i%4)) })
	cc, err := c.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), cc.Overlay(), core.Options{}, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FastPaths != res.Components {
		t.Errorf("expected every component on the fast path: %d of %d", res.FastPaths, res.Components)
	}
	if res.Resolved != 0 {
		t.Errorf("trivial components were resolved: %d", res.Resolved)
	}
	ref, err := mcr.Solve(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(res.Tc, ref.Tc); d > 1e-9 {
		t.Errorf("Tc mismatch: decomp %.12g vs mcr %.12g", res.Tc, ref.Tc)
	}
}

// TestLPBackendParity: forcing every component through the LP backend
// (huge cutoff) and forcing none (negative cutoff) must agree.
func TestLPBackendParity(t *testing.T) {
	cc, _ := banksWithCross(t)
	ctx := context.Background()
	for _, opts := range optionVariants() {
		viaLP, err := Solve(ctx, cc.Overlay(), opts, Config{LPCutoff: 1 << 20}, NewState())
		if err != nil {
			t.Fatalf("LP backend: %v", err)
		}
		viaMCR, err := Solve(ctx, cc.Overlay(), opts, Config{LPCutoff: -1}, NewState())
		if err != nil {
			t.Fatalf("probe backend: %v", err)
		}
		if d := relDiff(viaLP.Tc, viaMCR.Tc); d > 1e-9 {
			t.Errorf("backend mismatch: LP %.12g vs probe %.12g", viaLP.Tc, viaMCR.Tc)
		}
	}
}

// TestSweepParity: the decomposed sweep must reproduce the monolithic
// batched-LP sweep value for value, including the invalid-value and
// cross-arc cases, under every option variant.
func TestSweepParity(t *testing.T) {
	cc, cross := banksWithCross(t)
	values := []float64{0, 5, 20, 30, 31, 60, 120, -1, math.NaN(), 240}
	for _, pidx := range []int{4, cross} {
		for vi, opts := range optionVariants() {
			want, wantErrs := core.SweepDelaysCompiled(cc, opts, pidx, values)
			got, gotErrs := Sweep(cc, opts, pidx, values, Config{})
			for i := range values {
				if (wantErrs[i] == nil) != (gotErrs[i] == nil) {
					t.Errorf("path %d/v%d value %g: error mismatch: core %v vs decomp %v", pidx, vi, values[i], wantErrs[i], gotErrs[i])
					continue
				}
				if wantErrs[i] != nil {
					continue
				}
				if d := relDiff(got[i], want[i]); d > 1e-9 {
					t.Errorf("path %d/v%d value %g: Tc mismatch: decomp %.12g vs core %.12g (rel %.3g)", pidx, vi, values[i], got[i], want[i], d)
				}
			}
		}
	}
}

// TestSweepResolvesOnlyDirty: an intra-component sweep re-solves the
// dirty bank once per value (plus the priming pass); a cross-arc sweep
// re-solves nothing per value.
func TestSweepResolvesOnlyDirty(t *testing.T) {
	cc, cross := banksWithCross(t)
	values := []float64{10, 20, 30, 40, 50}
	run := func(pidx int) int64 {
		rec := obs.New()
		ctx := obs.With(context.Background(), rec)
		_, errs := SweepCtx(ctx, cc, core.Options{}, pidx, values, Config{Workers: 1})
		for i, err := range errs {
			if err != nil {
				t.Fatalf("value %d: %v", i, err)
			}
		}
		return rec.Snapshot().Counters["components_resolved"]
	}
	const primed = 3
	if got := run(4); got != primed+int64(len(values)) {
		t.Errorf("intra sweep resolved %d, want %d", got, primed+len(values))
	}
	if got := run(cross); got != primed {
		t.Errorf("cross sweep resolved %d, want %d", got, primed)
	}
}

// TestSweepHoldClamp: sweeping a delay below the path's best-case
// delay under DesignForHold exercises the solver-side MinDelay clamp;
// the decomposed sweep must track the LP sweep through it.
func TestSweepHoldClamp(t *testing.T) {
	c := core.NewCircuit(2)
	for i := 0; i < 4; i++ {
		c.AddSync(core.Synchronizer{Kind: core.Latch, Phase: i % 2, Setup: 1, DQ: 2, Hold: 0.8})
	}
	for i := 0; i < 4; i++ {
		c.AddPath(i, (i+1)%4, 25)
	}
	cc, err := c.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{DesignForHold: true}
	values := []float64{40, 25, 10, 3, 1, 0.5, 30}
	want, wantErrs := core.SweepDelaysCompiled(cc, opts, 2, values)
	got, gotErrs := Sweep(cc, opts, 2, values, Config{})
	for i := range values {
		if (wantErrs[i] == nil) != (gotErrs[i] == nil) {
			t.Errorf("value %g: error mismatch: core %v vs decomp %v", values[i], wantErrs[i], gotErrs[i])
			continue
		}
		if wantErrs[i] != nil {
			continue
		}
		if d := relDiff(got[i], want[i]); d > 1e-9 {
			t.Errorf("value %g: Tc mismatch: decomp %.12g vs core %.12g", values[i], got[i], want[i])
		}
	}
}
