package decomp

import (
	"context"
	"testing"

	"mintc/internal/core"
	"mintc/internal/mcr"
	"mintc/internal/obs"
)

// TestSweepPrimedStateZeroComponentSolves: a sweep over a
// cross-component arc with a pre-primed shared State performs ZERO
// component solves — priming is pure cache hits and the cross arc
// dirties no component — while the answers still match the monolithic
// batched-LP sweep.
func TestSweepPrimedStateZeroComponentSolves(t *testing.T) {
	cc, cross := banksWithCross(t)
	opts := core.Options{}
	st := NewState()
	if _, err := Solve(context.Background(), cc.Overlay(), opts, Config{}, st); err != nil {
		t.Fatal(err)
	}
	values := []float64{10, 20, 30, 40, 50}
	rec := obs.New()
	ctx := obs.With(context.Background(), rec)
	got, errs := SweepStateCtx(ctx, cc, opts, cross, values, Config{Workers: 1}, st)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("value %g: %v", values[i], err)
		}
	}
	if n := rec.Snapshot().Counters["components_resolved"]; n != 0 {
		t.Errorf("primed cross-arc sweep solved %d components, want 0", n)
	}
	want, wantErrs := core.SweepDelaysCompiled(cc, opts, cross, values)
	for i := range values {
		if wantErrs[i] != nil {
			t.Fatalf("core sweep value %g: %v", values[i], wantErrs[i])
		}
		if d := relDiff(got[i], want[i]); d > 1e-9 {
			t.Errorf("value %g: Tc mismatch: decomp %.12g vs core %.12g", values[i], got[i], want[i])
		}
	}
}

// TestSweepPrimedStateIntraDirty: with priming served from the shared
// State, an intra-component sweep pays only the per-value re-solves of
// the one dirty bank.
func TestSweepPrimedStateIntraDirty(t *testing.T) {
	cc, _ := banksWithCross(t)
	opts := core.Options{}
	st := NewState()
	if _, err := Solve(context.Background(), cc.Overlay(), opts, Config{}, st); err != nil {
		t.Fatal(err)
	}
	values := []float64{10, 20, 30, 40, 50}
	rec := obs.New()
	ctx := obs.With(context.Background(), rec)
	_, errs := SweepStateCtx(ctx, cc, opts, 4, values, Config{Workers: 1}, st)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("value %g: %v", values[i], err)
		}
	}
	if n := rec.Snapshot().Counters["components_resolved"]; n != int64(len(values)) {
		t.Errorf("primed intra sweep solved %d components, want %d (one per value)", n, len(values))
	}
}

// TestSolveTwoComponentEdit: an overlay whose edits land in two
// different banks re-solves exactly those two components, and the
// answer stays in lockstep with the monolithic solver.
func TestSolveTwoComponentEdit(t *testing.T) {
	cc, _ := banksWithCross(t)
	opts := core.Options{}
	st := NewState()
	ctx := context.Background()
	base := cc.Overlay()
	if _, err := Solve(ctx, base, opts, Config{}, st); err != nil {
		t.Fatal(err)
	}
	// Path 4 lives in bank 0, path 12 in bank 1.
	ov := base.With(4, 200).With(12, 210)
	if comps, crossEdit := ov.DirtyComponents(); crossEdit || len(comps) != 2 {
		t.Fatalf("DirtyComponents = %v, cross=%v; want two components", comps, crossEdit)
	}
	res, err := Solve(ctx, ov, opts, Config{}, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved != 2 {
		t.Errorf("two-component edit resolved %d components, want 2", res.Resolved)
	}
	ref, err := mcr.SolveCtx(ctx, ov.Materialize(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(res.Tc, ref.Tc); d > 1e-9 {
		t.Errorf("Tc mismatch: decomp %.12g vs mcr %.12g", res.Tc, ref.Tc)
	}
}

// TestWarmPotentialReuse: with a shared State, an edited re-solve
// warm-starts its probes from persisted base-overlay potentials — the
// Result reports the hits, and the warm solve performs strictly fewer
// edge relaxations than the same solve cold — without moving the
// answer.
func TestWarmPotentialReuse(t *testing.T) {
	cc, _ := banksWithCross(t)
	// Force the probe backend on every component so the component-level
	// potential reuse engages alongside the coupling pass's.
	cfg := Config{LPCutoff: -1}
	opts := core.Options{}
	base := cc.Overlay()
	edited := base.With(4, 200)

	st := NewState()
	prime, err := Solve(context.Background(), base, opts, cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if prime.WarmPotentialHits != 0 {
		t.Errorf("base prime reported %d warm hits, want 0 (nothing persisted yet)", prime.WarmPotentialHits)
	}

	coldRec := obs.New()
	cold, err := Solve(obs.With(context.Background(), coldRec), edited, opts, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	warmRec := obs.New()
	warm, err := Solve(obs.With(context.Background(), warmRec), edited, opts, cfg, st)
	if err != nil {
		t.Fatal(err)
	}

	// The dirty component's re-solve and the coupling pass both seed.
	if warm.WarmPotentialHits < 2 {
		t.Errorf("warm solve reported %d warm-potential hits, want >= 2", warm.WarmPotentialHits)
	}
	if cold.WarmPotentialHits != 0 {
		t.Errorf("stateless solve reported %d warm hits, want 0", cold.WarmPotentialHits)
	}
	coldRelax := coldRec.Snapshot().Counters["probe_relaxations"]
	warmRelax := warmRec.Snapshot().Counters["probe_relaxations"]
	if warmRelax >= coldRelax {
		t.Errorf("warm solve relaxed %d edges, cold %d: potentials bought nothing", warmRelax, coldRelax)
	}

	ref, err := mcr.SolveCtx(context.Background(), edited.Materialize(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]float64{"warm": warm.Tc, "cold": cold.Tc} {
		if d := relDiff(tc, ref.Tc); d > 1e-9 {
			t.Errorf("%s Tc %.12g vs monolithic %.12g (rel %.3g)", name, tc, ref.Tc, d)
		}
	}
}

// TestCouplingPassAllocs gates the steady-state allocation count of a
// repeat decomposed solve with a shared State: every component answer
// is a cache hit and the coupling pass reuses the persistent compiled
// solver, so allocations are limited to the Result (schedule, D,
// per-component bounds) and the worker scaffolding — a constant count,
// independent of how many solves came before.
func TestCouplingPassAllocs(t *testing.T) {
	cc, _ := banksWithCross(t)
	opts := core.Options{}
	st := NewState()
	rec := obs.New()
	ctx := obs.With(context.Background(), rec)
	base := cc.Overlay()
	cfg := Config{Workers: 1}
	if _, err := Solve(ctx, base, opts, cfg, st); err != nil {
		t.Fatal(err)
	}
	var solveErr error
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Solve(ctx, base, opts, cfg, st); err != nil {
			solveErr = err
		}
	})
	if solveErr != nil {
		t.Fatal(solveErr)
	}
	// Measured ~36 on a repeat solve of the 3-bank circuit; the ceiling
	// leaves headroom for runtime noise while still tripping on any
	// per-solve rebuild of the constraint graph (O(paths) allocations).
	const ceiling = 100
	if allocs > ceiling {
		t.Errorf("repeat decomposed solve allocated %.0f objects/op, gate is %d", allocs, ceiling)
	}
}
