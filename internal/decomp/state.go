package decomp

import (
	"sync"

	"mintc/internal/lp"
	"mintc/internal/mcr"
)

// State memoizes per-component answers across decomposed solves of
// ONE frozen snapshot under ONE option set. Two kinds of entries:
//
//   - answers, keyed by component delay digest
//     (core.DelayOverlay.ComponentDigest): the subsystem optimum and
//     its witness cycle. A digest covers exactly the delays the
//     component's subsystem reads, so overlays that edit other
//     components hit the same entries — that is the incremental
//     re-solve: only dirty components miss.
//   - base simplex bases, keyed by component: the optimal basis of
//     the component LP over the snapshot's own delays, the fixed warm
//     start every edited re-solve of that component uses.
//   - base probe potentials, keyed by component (plus one full-graph
//     set for the coupling pass): the node potentials of a probe solve
//     over the snapshot's own delays — the SPFA analogue of the warm
//     basis. Edited re-solves seed them (mcr.Solver.SeedPotentials)
//     so the warm probe relaxes only the residual the edit perturbed.
//
// Because each stored value is a pure function of (snapshot, options,
// digest) — LP re-solves always warm from the base basis, probe
// re-solves always warm from the base potentials (computed on demand,
// like the basis), never from whatever potentials an arbitrary earlier
// overlay left behind — concurrent solves racing on the same key
// compute identical values, so the cache never makes results depend
// on solve order. The session layer relies on this for its
// concurrent-equals-serial guarantee.
//
// A State must not be shared across snapshots or option sets: digests
// do not cover either. The session layer keys its States the same way
// it keys its result cache.
type State struct {
	mu      sync.Mutex
	comps   map[uint64]compAnswer
	bases   map[int]*lp.Basis
	compPot map[int][]float64

	// The persistent coupling-pass solver: the full constraint graph is
	// by far the most expensive thing a decomposed solve builds (CSR
	// assembly is O(paths)), and its structure depends only on the
	// snapshot, so one compiled instance serves every solve. coupMu
	// serializes the coupling pass (component solves still fan out);
	// couplerEdits tracks which paths the coupler's constants currently
	// deviate on so the next solve can reconcile them against its
	// overlay, and couplerPot holds the base-overlay fixpoint every
	// coupling pass warm-starts from.
	coupMu       sync.Mutex
	coupler      *mcr.Solver
	couplerEdits []int32
	couplerPot   []float64
}

// NewState returns an empty per-(snapshot, options) component cache.
func NewState() *State {
	return &State{
		comps:   make(map[uint64]compAnswer),
		bases:   make(map[int]*lp.Basis),
		compPot: make(map[int][]float64),
	}
}

// Entries reports the number of cached component answers (test and
// observability hook).
func (st *State) Entries() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.comps)
}

func (st *State) lookup(dig uint64) (compAnswer, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ans, ok := st.comps[dig]
	return ans, ok
}

func (st *State) store(dig uint64, ans compAnswer) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.comps[dig]; !ok {
		st.comps[dig] = ans
	}
}

func (st *State) basis(ci int) *lp.Basis {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bases[ci]
}

func (st *State) storeBasis(ci int, b *lp.Basis) {
	if b == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.bases[ci]; !ok {
		st.bases[ci] = b
	}
}

func (st *State) potentials(ci int) []float64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.compPot[ci]
}

func (st *State) storePotentials(ci int, pot []float64) {
	if pot == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.compPot[ci]; !ok {
		st.compPot[ci] = pot
	}
}
