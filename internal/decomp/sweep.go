package decomp

import (
	"context"
	"fmt"
	"math"
	"sync"

	"mintc/internal/core"
	"mintc/internal/mcr"
	"mintc/internal/obs"
)

// Sweep solves the design problem at each delay value for one path,
// decomposed: only the component containing the edited arc is
// re-solved per value, every other component contributes its one
// priming answer, and a full-graph coupling probe — warm-started from
// the previous value's potentials — certifies (or repairs) each
// candidate. Editing a cross-component arc re-solves no component at
// all; each value pays one coupling pass.
//
// The interface mirrors core.SweepDelaysCompiled: results in input
// order, per-value errors (an infeasible value carries a typed
// mcr.InfeasibleError), one frozen snapshot shared by all workers.
// Answers agree with the monolithic sweep to solver tolerance.
func Sweep(cc *core.Compiled, opts core.Options, pathIndex int, values []float64, cfg Config) ([]float64, []error) {
	return SweepCtx(context.Background(), cc, opts, pathIndex, values, cfg)
}

// SweepCtx is Sweep with cancellation; any obs recorder carried by the
// context receives the probe and component counters.
func SweepCtx(ctx context.Context, cc *core.Compiled, opts core.Options, pathIndex int, values []float64, cfg Config) ([]float64, []error) {
	return SweepStateCtx(ctx, cc, opts, pathIndex, values, cfg, nil)
}

// SweepStateCtx is SweepCtx priming its per-component answers through
// a shared State (nil = a private one): a sweep over a path whose
// component answers are already cached — or whose edit touches a
// cross-component arc, which dirties no component at all — re-solves
// nothing during priming, paying only the per-value coupling passes.
func SweepStateCtx(ctx context.Context, cc *core.Compiled, opts core.Options, pathIndex int, values []float64, cfg Config, st *State) ([]float64, []error) {
	tcs := make([]float64, len(values))
	errs := make([]error, len(values))
	fail := func(err error) ([]float64, []error) {
		for i := range errs {
			errs[i] = err
		}
		return tcs, errs
	}
	if pathIndex < 0 || pathIndex >= len(cc.Circuit().Paths()) {
		return fail(fmt.Errorf("decomp: path index %d out of range", pathIndex))
	}
	if err := opts.ValidateFor(cc.Circuit()); err != nil {
		return fail(err)
	}
	if len(values) == 0 {
		return tcs, errs
	}

	rec := obs.From(ctx)
	pt := cc.Partition()
	base := cc.Overlay()
	rec.Add(obs.ComponentsTotal, int64(pt.NumComponents()))

	// Prime every component once at the base delays. The per-component
	// solves drop FixedTc (Solve does the same); the coupling pass
	// below keeps it, so pinned-Tc semantics match the monolithic
	// sweep per value.
	if st == nil {
		st = NewState()
	}
	answers, resolved, fastPaths, err := solveAllComponents(ctx, base, opts, cfg, st)
	if err != nil {
		return fail(err)
	}
	rec.Add(obs.ComponentsResolved, resolved)
	rec.Add(obs.DecompFastPaths, fastPaths)

	// The edited arc's component (or -1: a cross-component arc, whose
	// value never moves any subsystem bound) and the best bound over
	// all the others, fixed for the whole sweep.
	dirty := pt.PathComp(pathIndex)
	maxOther := 0.0
	for ci, ans := range answers {
		if ci != dirty && ans.tc > maxOther {
			maxOther = ans.tc
		}
	}
	subOpts := opts
	subOpts.FixedTc = 0

	var nResolved int64
	var mu sync.Mutex
	solveChunk := func(lo, hi int) {
		full, err := mcr.NewSolverOverlay(base, opts)
		if err != nil {
			for i := lo; i < hi; i++ {
				errs[i] = err
			}
			return
		}
		var sub *mcr.Solver
		if dirty >= 0 && !pt.Trivial(dirty) {
			sub, err = mcr.NewComponentSolver(base, subOpts, pt.Members(dirty))
			if err != nil {
				for i := lo; i < hi; i++ {
					errs[i] = err
				}
				return
			}
		}
		var chunkResolved int64
		for i := lo; i < hi; i++ {
			v := values[i]
			if ctx.Err() != nil {
				errs[i] = ctx.Err()
				continue
			}
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				errs[i] = fmt.Errorf("decomp: sweep delay %g is invalid (must be finite and nonnegative)", v)
				continue
			}
			cand := maxOther
			if sub != nil {
				sub.SetDelay(pathIndex, v)
				// Witness-bound walk: re-price the previous value's
				// binding cycle at the new delay. Edge endpoints are
				// stable under SetDelay, so the recomputed ratio is a
				// sound lower bound; while the same cycle stays critical
				// — the straight segments between breakpoints of the
				// piecewise-linear Tc(delay) curve — the first probe at
				// the bound is feasible and the point costs one warm
				// probe. At a breakpoint a different cycle binds and the
				// Lawler jumps repair the walk automatically.
				lower := 0.0
				if wb, ok := sub.WitnessBound(); ok {
					lower = wb
				}
				sres, err := sub.MinTcFromWarmCtx(ctx, lower)
				if err != nil {
					errs[i] = err
					continue
				}
				chunkResolved++
				if sres.Tc > cand {
					cand = sres.Tc
				}
			}
			full.SetDelay(pathIndex, v)
			if wb, ok := full.WitnessBound(); ok && wb > cand {
				cand = wb
			}
			fres, err := full.MinTcFromWarmCtx(ctx, cand)
			if err != nil {
				errs[i] = err
				continue
			}
			tcs[i] = fres.Tc
		}
		mu.Lock()
		nResolved += chunkResolved
		mu.Unlock()
	}

	workers := cfg.workers()
	if workers > len(values) {
		workers = len(values)
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (len(values) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(values); lo += chunk {
		hi := lo + chunk
		if hi > len(values) {
			hi = len(values)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			solveChunk(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	rec.Add(obs.ComponentsResolved, nResolved)
	return tcs, errs
}
