// Command smoload is the closed-loop load generator for smod: N
// workers each keep exactly one request in flight against the daemon,
// retrying shed (429) responses with backoff, and report sustained
// QPS plus a latency histogram with p50/p95/p99.
//
//	smoload -addr localhost:7070 -duration 10s -workers 8
//	smoload -addr localhost:7070 -binary          # SMO binary protocol
//	smoload -addr localhost:7070 -out bench/serve # record BENCH_*.json
//
// Each request opens with a random what-if delay edit on a random path
// of a random suite circuit, then asks for a CERTIFIED solve — so a
// run's "uncertified: 0" line proves the daemon stayed on verified
// answers under load. The summary always prints the "5xx:" and
// "uncertified:" counts on one line for CI to grep.
//
// The optional -out record is written in the smobench benchRecord
// shape (circuit "serve-mix", engine "serve-<engine>"), with the
// serving fields qps / p50_ms / p99_ms / shed_count, so
// `smobench -compare old new` tracks the serving trajectory exactly
// like solver performance.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mintc/internal/gen"
	"mintc/internal/parse"
	"mintc/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7070", "smod address")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		workers  = flag.Int("workers", 8, "concurrent closed-loop workers")
		engineN  = flag.String("engine", "mlp", "engine for the certified solves")
		circs    = flag.String("circuits", "example1-80,example1-120,fig1", "comma-separated gen-suite circuit names")
		deadline = flag.Duration("deadline", 15*time.Second, "per-request deadline")
		binary   = flag.Bool("binary", false, "use the SMO binary protocol instead of HTTP")
		outDir   = flag.String("out", "", "directory for the BENCH_*.json record (empty = don't record)")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
	)
	flag.Parse()

	targets, err := openSessions(*addr, *circs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smoload: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("smoload: %d sessions open on %s, %d workers, %s, engine %s, protocol %s\n",
		len(targets), *addr, *workers, *duration, *engineN, map[bool]string{true: "binary", false: "http"}[*binary])

	stop := time.Now().Add(*duration)
	stats := make([]workerStats, *workers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &worker{
				addr:     *addr,
				engine:   *engineN,
				targets:  targets,
				deadline: *deadline,
				binary:   *binary,
				rng:      rand.New(rand.NewSource(*seed + int64(i))),
				stats:    &stats[i],
			}
			w.run(stop)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total workerStats
	for i := range stats {
		total.merge(&stats[i])
	}
	sort.Float64s(total.latenciesMs)
	qps := float64(total.ok) / elapsed.Seconds()
	p50 := percentile(total.latenciesMs, 50)
	p95 := percentile(total.latenciesMs, 95)
	p99 := percentile(total.latenciesMs, 99)

	fmt.Printf("smoload: ok: %d, shed(429): %d, 5xx: %d, 4xx: %d, uncertified: %d, net_errors: %d, give_ups: %d\n",
		total.ok, total.shed, total.s5xx, total.s4xx, total.uncertified, total.netErrs, total.giveUps)
	fmt.Printf("smoload: qps: %.1f, p50: %.2fms, p95: %.2fms, p99: %.2fms over %s\n", qps, p50, p95, p99, elapsed.Round(time.Millisecond))
	printHistogram(total.latenciesMs)

	if *outDir != "" {
		rec := map[string]any{
			"circuit":    "serve-mix",
			"engine":     "serve-" + *engineN,
			"certified":  total.uncertified == 0,
			"wall_ns":    elapsed.Nanoseconds(),
			"qps":        qps,
			"p50_ms":     p50,
			"p99_ms":     p99,
			"shed_count": total.shed,
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "smoload: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("BENCH_serve-mix_serve-%s.json", *engineN))
		blob, _ := json.MarshalIndent(rec, "", "  ")
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "smoload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("smoload: recorded %s\n", path)
	}
	if total.s5xx > 0 || total.uncertified > 0 {
		os.Exit(1)
	}
}

// target is one opened session the workers can hit.
type target struct {
	digest string
	paths  int
	delays []float64 // base worst-case delay per path, for realistic edits
}

// openSessions registers the named gen-suite circuits with the daemon.
func openSessions(addr, names string) ([]target, error) {
	suite := map[string]gen.Benchmark{}
	for _, b := range gen.Suite() {
		suite[b.Name] = b
	}
	var out []target
	client := &http.Client{Timeout: 30 * time.Second}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		b, ok := suite[name]
		if !ok {
			return nil, fmt.Errorf("unknown suite circuit %q", name)
		}
		var smo strings.Builder
		if err := parse.WriteCircuit(&smo, b.Circuit); err != nil {
			return nil, err
		}
		body, _ := json.Marshal(map[string]any{"tenant": "smoload", "circuit": smo.String()})
		resp, err := client.Post("http://"+addr+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("open %s: %w", name, err)
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("open %s: %s: %s", name, resp.Status, blob)
		}
		var opened struct {
			Digest string `json:"digest"`
			Paths  int    `json:"paths"`
		}
		if err := json.Unmarshal(blob, &opened); err != nil {
			return nil, fmt.Errorf("open %s: %w", name, err)
		}
		t := target{digest: opened.Digest, paths: opened.Paths}
		for _, p := range b.Circuit.Paths() {
			t.delays = append(t.delays, p.Delay)
		}
		out = append(out, t)
	}
	return out, nil
}

type workerStats struct {
	ok          int64
	shed        int64
	s5xx        int64
	s4xx        int64
	uncertified int64
	netErrs     int64
	giveUps     int64
	latenciesMs []float64
}

func (a *workerStats) merge(b *workerStats) {
	a.ok += b.ok
	a.shed += b.shed
	a.s5xx += b.s5xx
	a.s4xx += b.s4xx
	a.uncertified += b.uncertified
	a.netErrs += b.netErrs
	a.giveUps += b.giveUps
	a.latenciesMs = append(a.latenciesMs, b.latenciesMs...)
}

type worker struct {
	addr     string
	engine   string
	targets  []target
	deadline time.Duration
	binary   bool
	rng      *rand.Rand
	stats    *workerStats

	httpClient *http.Client
	binConn    net.Conn
	binReader  *bufio.Reader
	binID      int64
}

// run is the closed loop: one request in flight, retry-with-backoff on
// shed, until the stop time.
func (w *worker) run(stop time.Time) {
	w.httpClient = &http.Client{Timeout: w.deadline + 5*time.Second}
	defer w.closeBin()
	for time.Now().Before(stop) {
		w.doOnce(stop)
	}
}

// doOnce issues one workload request, retrying sheds with exponential
// backoff (respecting Retry-After) until it lands or the run ends.
func (w *worker) doOnce(stop time.Time) {
	t := w.targets[w.rng.Intn(len(w.targets))]
	path := w.rng.Intn(t.paths)
	// Perturb the path's real delay by ±20%: enough spread to exercise
	// overlays, basis warm starts and the session cache's miss path.
	delay := t.delays[path] * (0.8 + 0.4*w.rng.Float64())
	req := map[string]any{
		"digest":  t.digest,
		"edits":   []map[string]any{{"path": path, "delay": delay}},
		"engine":  w.engine,
		"certify": true,
	}

	backoff := 25 * time.Millisecond
	for attempt := 0; attempt < 6; attempt++ {
		if !time.Now().Before(stop) {
			return
		}
		t0 := time.Now()
		status, certified, retryAfter, err := w.send(req)
		if err != nil {
			w.stats.netErrs++
			w.closeBin()
			time.Sleep(backoff)
			backoff *= 2
			continue
		}
		switch {
		case status == http.StatusOK:
			w.stats.ok++
			w.stats.latenciesMs = append(w.stats.latenciesMs, float64(time.Since(t0).Microseconds())/1000)
			if !certified {
				w.stats.uncertified++
			}
			return
		case status == http.StatusTooManyRequests:
			w.stats.shed++
			sleep := backoff
			if retryAfter > 0 && retryAfter < 2*time.Second {
				sleep = retryAfter
			}
			time.Sleep(sleep)
			backoff *= 2
		case status >= 500:
			w.stats.s5xx++
			return
		default:
			w.stats.s4xx++
			return
		}
	}
	w.stats.giveUps++
}

// send issues one solve request over the configured protocol.
func (w *worker) send(req map[string]any) (status int, certified bool, retryAfter time.Duration, err error) {
	if w.binary {
		return w.sendBinary(req)
	}
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest("POST", "http://"+w.addr+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return 0, false, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Deadline-Ms", strconv.FormatInt(w.deadline.Milliseconds(), 10))
	resp, err := w.httpClient.Do(hreq)
	if err != nil {
		return 0, false, 0, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, false, 0, err
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	var solved struct {
		Certified bool `json:"certified"`
	}
	_ = json.Unmarshal(blob, &solved)
	return resp.StatusCode, solved.Certified, retryAfter, nil
}

// sendBinary issues the same request as one SMO binary frame over the
// worker's persistent connection.
func (w *worker) sendBinary(req map[string]any) (status int, certified bool, retryAfter time.Duration, err error) {
	if w.binConn == nil {
		c, err := net.DialTimeout("tcp", w.addr, 5*time.Second)
		if err != nil {
			return 0, false, 0, err
		}
		if err := serve.WriteBinaryMagic(c); err != nil {
			c.Close()
			return 0, false, 0, err
		}
		w.binConn = c
		w.binReader = bufio.NewReader(c)
	}
	w.binID++
	frame := map[string]any{"id": w.binID, "method": "solve", "body": req, "deadline_ms": w.deadline.Milliseconds()}
	_ = w.binConn.SetDeadline(time.Now().Add(w.deadline + 5*time.Second))
	if err := serve.EncodeFrame(w.binConn, frame); err != nil {
		return 0, false, 0, err
	}
	var resp struct {
		Status       int             `json:"status"`
		Error        string          `json:"error"`
		RetryAfterMs int64           `json:"retry_after_ms"`
		Body         json.RawMessage `json:"body"`
	}
	if err := serve.DecodeFrame(w.binReader, &resp); err != nil {
		return 0, false, 0, err
	}
	if resp.Error != "" {
		if resp.Status == 0 {
			resp.Status = http.StatusInternalServerError
		}
		return resp.Status, false, time.Duration(resp.RetryAfterMs) * time.Millisecond, nil
	}
	var solved struct {
		Certified bool `json:"certified"`
	}
	_ = json.Unmarshal(resp.Body, &solved)
	return http.StatusOK, solved.Certified, 0, nil
}

func (w *worker) closeBin() {
	if w.binConn != nil {
		w.binConn.Close()
		w.binConn = nil
		w.binReader = nil
	}
}

// percentile reads the p-th percentile from an ascending-sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// printHistogram renders log2 latency buckets.
func printHistogram(latMs []float64) {
	if len(latMs) == 0 {
		return
	}
	buckets := map[int]int{}
	maxB := 0
	for _, l := range latMs {
		b := 0
		for lim := 1.0; l >= lim && b < 20; lim *= 2 {
			b++
		}
		buckets[b]++
		if b > maxB {
			maxB = b
		}
	}
	fmt.Println("smoload: latency histogram:")
	for b := 0; b <= maxB; b++ {
		n := buckets[b]
		lo, hi := 0.0, 1.0
		if b > 0 {
			lo = float64(int(1) << (b - 1))
			hi = float64(int(1) << b)
		}
		bar := strings.Repeat("#", 60*n/len(latMs))
		fmt.Printf("  %7.0f-%-7.0fms %6d %s\n", lo, hi, n, bar)
	}
}
