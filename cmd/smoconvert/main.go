// Command smoconvert re-clocks an edge-triggered design with
// transparent latches and picks a production schedule for it.
//
// The input is a .smo circuit (typically flip-flops on a single-phase
// clock — the classic edge-triggered methodology). The tool
//
//  1. computes the edge-triggered baseline cycle time (the fastest the
//     design can run without borrowing),
//  2. converts every flip-flop into its master/slave latch pair on a
//     doubled clock (ConvertToLatches), opening each register boundary
//     to cycle stealing,
//  3. solves the converted circuit for its latch-optimal minimum cycle
//     time through the certified engine path (the answer is
//     independently re-checked against the paper's constraint system
//     and the LP duality gap), and
//  4. designs the shipping schedule at a chosen cycle time with a
//     schedule objective: maximize the worst setup margin (default),
//     minimize the total phase width, or maximize the tolerated clock
//     skew. The chosen schedule is re-verified with checkTc.
//
// By default the shipping cycle time is the edge-triggered baseline —
// "keep the old clock period, bank the borrowing gain as margin".
// Pin a faster target with -tc (any value down to the printed
// latch-optimal minimum is feasible).
//
//	smoconvert -f design.smo
//	smoconvert -f design.smo -objective skew -tc 11
//	smoconvert -f design.smo -o latched.smo -sched clock.smo
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"mintc"
)

func main() {
	var (
		file      = flag.String("f", "", "edge-triggered circuit description (.smo); '-' for stdin")
		objective = flag.String("objective", "margin", "schedule objective at the target Tc: margin, width or skew")
		targetTc  = flag.Float64("tc", 0, "target cycle time for the shipping schedule (default: the edge-triggered baseline)")
		outFile   = flag.String("o", "", "write the converted latch circuit (.smo) to this file")
		schedFile = flag.String("sched", "", "write the chosen schedule to this file")
		diagram   = flag.Bool("diagram", false, "print an ASCII timing diagram of the chosen schedule")
		minWidth  = flag.Float64("minwidth", 0, "minimum phase width")
		minSep    = flag.Float64("minsep", 0, "minimum separation between I/O phase pairs")
		skew      = flag.Float64("skew", 0, "clock skew margin")
	)
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "smoconvert: -f <circuit.smo> is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg := config{
		objective: *objective, targetTc: *targetTc,
		outFile: *outFile, schedFile: *schedFile, diagram: *diagram,
		opts: mintc.Options{MinPhaseWidth: *minWidth, MinSeparation: *minSep, Skew: *skew},
	}
	if err := run(*file, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "smoconvert: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	objective          string
	targetTc           float64
	outFile, schedFile string
	diagram            bool
	opts               mintc.Options
}

func run(file string, cfg config) error {
	c, err := loadCircuit(file)
	if err != nil {
		return err
	}
	ffs := 0
	for _, s := range c.Syncs() {
		if s.Kind == mintc.FlipFlop {
			ffs++
		}
	}
	fmt.Printf("input: %d-phase clock, %d synchronizers (%d flip-flops), %d paths\n",
		c.K(), c.L(), ffs, len(c.Paths()))
	if ffs == 0 {
		fmt.Println("note: no flip-flops to convert; doubling the clock anyway")
	}

	// 1. The edge-triggered baseline: how fast the design runs as-is.
	et, err := mintc.MinTcEdgeTriggered(c, cfg.opts)
	if err != nil {
		return fmt.Errorf("edge-triggered baseline: %w", err)
	}
	fmt.Printf("edge-triggered baseline: Tc = %.6g\n", et.Schedule.Tc)

	// 2. Convert flip-flops to master/slave latch pairs.
	conv, err := mintc.ConvertToLatches(c)
	if err != nil {
		return err
	}
	lc := conv.Circuit
	fmt.Printf("converted: %d-phase clock, %d latches, %d paths (%d flip-flops split)\n",
		lc.K(), lc.L(), len(lc.Paths()), conv.FFs)

	// 3. Latch-optimal minimum cycle time, certified.
	minRes, err := certifiedSolve(lc, cfg.opts)
	if err != nil {
		return fmt.Errorf("latch-optimal solve: %w", err)
	}
	gain := et.Schedule.Tc - minRes.Tc
	fmt.Printf("latch-optimal: Tc = %.6g (certified: %s) — borrowing gain %.6g (%.1f%%)\n",
		minRes.Tc, verdict(minRes), gain, 100*gain/et.Schedule.Tc)

	// 4. The shipping schedule at the target Tc under the chosen
	// objective.
	target := cfg.targetTc
	if target == 0 {
		target = et.Schedule.Tc
	}
	if target < minRes.Tc {
		return fmt.Errorf("target Tc %.6g is below the latch-optimal minimum %.6g", target, minRes.Tc)
	}
	var obj mintc.Objective
	switch cfg.objective {
	case "margin":
		obj = mintc.MaxMarginAtTc(target)
	case "width":
		obj = mintc.MinPhaseWidthAtTc(target)
	case "skew":
		obj = mintc.MaxSkewBudgetAtTc(target)
	default:
		return fmt.Errorf("unknown -objective %q (want margin, width or skew)", cfg.objective)
	}
	opts2 := cfg.opts
	opts2.Objective = obj
	shipRes, err := certifiedSolve(lc, opts2)
	if err != nil {
		return fmt.Errorf("schedule objective %s: %w", obj, err)
	}
	r, ok := shipRes.Detail.(*mintc.Result)
	if !ok {
		return fmt.Errorf("schedule objective %s: unexpected result detail %T", obj, shipRes.Detail)
	}
	fmt.Printf("shipping schedule (%s, certified: %s): %s = %.6g\n",
		obj, verdict(shipRes), objectiveNoun(cfg.objective), r.ObjectiveValue)
	fmt.Println(shipRes.Schedule)

	// Re-verify the chosen schedule with the analysis side (checkTc).
	an, err := mintc.CheckTc(lc, shipRes.Schedule, cfg.opts)
	if err != nil {
		return err
	}
	if !an.Feasible {
		fmt.Println("checkTc: FAIL")
		for _, v := range an.Violations {
			fmt.Printf("  %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("checkTc: PASS")

	if cfg.diagram {
		fmt.Println()
		fmt.Print(mintc.RenderDiagram(lc, shipRes.Schedule, shipRes.D, mintc.RenderOptions{Cycles: 2}))
	}
	if cfg.outFile != "" {
		if err := writeFile(cfg.outFile, func(f *os.File) error { return mintc.WriteCircuit(f, lc) }); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.outFile)
	}
	if cfg.schedFile != "" {
		if err := writeFile(cfg.schedFile, func(f *os.File) error { return mintc.WriteSchedule(f, shipRes.Schedule) }); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.schedFile)
	}
	return nil
}

// certifiedSolve runs the mlp engine on a frozen snapshot of c through
// the degradation supervisor, so every number printed above is
// independently re-checked.
func certifiedSolve(c *mintc.Circuit, opts mintc.Options) (*mintc.EngineResult, error) {
	cc, err := mintc.Freeze(c)
	if err != nil {
		return nil, err
	}
	eopts := mintc.EngineOptions{Core: opts, Seed: 1}
	return mintc.SolveEngineCertifiedOverlay(context.Background(), "mlp", cc.Overlay(), eopts, mintc.CertifyPolicy{})
}

// verdict summarizes a certificate for the one-line reports.
func verdict(res *mintc.EngineResult) string {
	cert := res.Certificate
	if cert == nil {
		return "no certificate"
	}
	if !cert.Certified() {
		return "REJECTED"
	}
	if !math.IsNaN(cert.DualityGap) {
		return fmt.Sprintf("ok, duality gap %.3g", cert.DualityGap)
	}
	return "ok"
}

func objectiveNoun(obj string) string {
	switch obj {
	case "width":
		return "total phase width"
	case "skew":
		return "tolerated extra skew"
	}
	return "worst setup margin"
}

func writeFile(name string, write func(*os.File) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadCircuit(file string) (*mintc.Circuit, error) {
	if file == "-" {
		return mintc.ParseCircuit(os.Stdin)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mintc.ParseCircuit(f)
}
