package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mintc"
)

// edgePipelineSMO mirrors examples/edge_pipeline.smo: a two-phase loop
// mixing latches and flip-flops with unbalanced stage delays, where
// conversion buys a real borrowing gain (edge-triggered Tc 17, latch
// optimum 15).
const edgePipelineSMO = `
clock 2
latch L1 phase 1 setup 0.5 dq 1
ff    F2 phase 2 setup 0.5 cq 1
latch L3 phase 1 setup 0.5 dq 1
ff    F4 phase 2 setup 0.5 cq 1
path L1 -> F2 delay 12
path F2 -> L3 delay 2
path L3 -> F4 delay 9
path F4 -> L1 delay 2
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	var buf strings.Builder
	b := make([]byte, 4096)
	for {
		n, err := r.Read(b)
		buf.Write(b[:n])
		if err != nil {
			break
		}
	}
	return buf.String(), ferr
}

func TestRunConvertsAndCertifies(t *testing.T) {
	in := writeTemp(t, "edge.smo", edgePipelineSMO)
	outC := filepath.Join(t.TempDir(), "latched.smo")
	outS := filepath.Join(t.TempDir(), "clock.smo")
	got, err := capture(t, func() error {
		return run(in, config{objective: "margin", outFile: outC, schedFile: outS})
	})
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, got)
	}
	for _, want := range []string{
		"edge-triggered baseline: Tc = 17",
		"latch-optimal: Tc = 15",
		"2 flip-flops split",
		"certified: ok",
		"checkTc: PASS",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "REJECTED") {
		t.Errorf("a certificate was rejected:\n%s", got)
	}
	// The written circuit must round-trip through the parser as a pure
	// latch design on the doubled clock.
	f, err := os.Open(outC)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lc, err := mintc.ParseCircuit(f)
	if err != nil {
		t.Fatalf("written circuit does not parse: %v", err)
	}
	if lc.K() != 4 || lc.L() != 6 {
		t.Errorf("written circuit: K=%d L=%d, want 4 phases and 6 latches", lc.K(), lc.L())
	}
	for _, s := range lc.Syncs() {
		if s.Kind != mintc.Latch {
			t.Errorf("written circuit still has a non-latch synchronizer %q", s.Name)
		}
	}
	if fi, err := os.Stat(outS); err != nil || fi.Size() == 0 {
		t.Errorf("schedule file not written: %v", err)
	}
}

func TestRunScheduleObjectives(t *testing.T) {
	in := writeTemp(t, "edge.smo", edgePipelineSMO)
	for _, tt := range []struct {
		objective string
		tc        float64
		noun      string
	}{
		{"width", 16, "total phase width"},
		{"skew", 17, "tolerated extra skew"},
		{"margin", 0, "worst setup margin"}, // default target: the baseline
	} {
		got, err := capture(t, func() error {
			return run(in, config{objective: tt.objective, targetTc: tt.tc})
		})
		if err != nil {
			t.Fatalf("%s: %v\noutput:\n%s", tt.objective, err, got)
		}
		if !strings.Contains(got, tt.noun) || !strings.Contains(got, "checkTc: PASS") {
			t.Errorf("%s: output missing %q or the checkTc verdict:\n%s", tt.objective, tt.noun, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	in := writeTemp(t, "edge.smo", edgePipelineSMO)
	if _, err := capture(t, func() error {
		return run(in, config{objective: "margin", targetTc: 10}) // below the latch optimum 15
	}); err == nil || !strings.Contains(err.Error(), "below the latch-optimal minimum") {
		t.Errorf("sub-minimum target: err = %v", err)
	}
	if _, err := capture(t, func() error {
		return run(in, config{objective: "fastest"})
	}); err == nil || !strings.Contains(err.Error(), "unknown -objective") {
		t.Errorf("unknown objective: err = %v", err)
	}
	if _, err := capture(t, func() error {
		return run(filepath.Join(t.TempDir(), "missing.smo"), config{objective: "margin"})
	}); err == nil {
		t.Error("missing input accepted")
	}
}
