// Command smogen generates circuit workloads in the .smo (timing
// model) or .gnl (gate level) formats, for feeding smoclk and for
// building custom benchmarks:
//
//	smogen -kind ring -n 8 -phases 2 -delay 30           # latch ring
//	smogen -kind pipeline -n 12 -phases 3 -delay 20      # pipeline
//	smogen -kind random -seed 7 -n 20                    # random circuit
//	smogen -kind example1 -d41 80                        # the paper's Fig. 5
//	smogen -kind gaas                                    # the GaAs model
//	smogen -kind glring -n 8 -depth 4                    # gate-level ring (.gnl)
//
// Output goes to stdout (redirect into a file).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mintc"
	"mintc/internal/circuits"
	"mintc/internal/gen"
	"mintc/internal/netex"
	"mintc/internal/parse"
)

func main() {
	var (
		kind   = flag.String("kind", "random", "ring, pipeline, random, example1, example2, fig1, gaas, or glring")
		n      = flag.Int("n", 8, "element count (ring/pipeline/random/glring)")
		phases = flag.Int("phases", 2, "clock phases (ring/pipeline)")
		d      = flag.Float64("delay", 30, "stage delay (ring/pipeline)")
		setup  = flag.Float64("setup", 1, "latch setup time")
		dq     = flag.Float64("dq", 2, "latch DQ delay")
		seed   = flag.Int64("seed", 1, "random seed (random)")
		d41    = flag.Float64("d41", 80, "Ld delay (example1)")
		depth  = flag.Int("depth", 4, "gate depth per stage (glring)")
		verify = flag.Bool("verify", false, "freeze and solve the generated model before emitting it")
	)
	flag.Parse()
	if err := generate(os.Stdout, *kind, *n, *phases, *d, *setup, *dq, *seed, *d41, *depth, *verify); err != nil {
		fmt.Fprintf(os.Stderr, "smogen: %v\n", err)
		os.Exit(1)
	}
}

func generate(w *os.File, kind string, n, phases int, d, setup, dq float64, seed int64, d41 float64, depth int, verify bool) error {
	var c *mintc.Circuit
	switch kind {
	case "ring":
		r, err := gen.Ring(phases, n, setup, dq, func(int) float64 { return d })
		if err != nil {
			return err
		}
		c = r
	case "pipeline":
		c = gen.Pipeline(phases, n, setup, dq, func(int) float64 { return d })
	case "random":
		c = gen.Random(rand.New(rand.NewSource(seed)), gen.RandomConfig{MaxSyncs: n})
	case "example1":
		c = circuits.Example1(d41)
	case "example2":
		c = circuits.Example2()
	case "fig1":
		c = circuits.Fig1(circuits.DefaultFig1Delays(), 2, 3)
	case "gaas":
		c = circuits.GaAsMIPS()
	case "glring":
		if verify {
			return fmt.Errorf("-verify applies to timing models, not gate-level output")
		}
		nl, err := gen.GateLevelRing(n, depth, setup, dq, 0.3, 0.1, 0.02)
		if err != nil {
			return err
		}
		return netex.WriteNetlist(w, nl)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if verify {
		// Freeze (validates the model once) and solve the snapshot, so a
		// generator bug surfaces here instead of inside a downstream tool.
		cc, err := mintc.Freeze(c)
		if err != nil {
			return fmt.Errorf("verify: %v", err)
		}
		r, err := mintc.MinTcOverlay(cc.Overlay(), mintc.Options{})
		if err != nil {
			return fmt.Errorf("verify: %v", err)
		}
		fmt.Fprintf(os.Stderr, "verified: model freezes and solves, optimal Tc = %.6g\n", r.Schedule.Tc)
	}
	return parse.WriteCircuit(w, c)
}
