package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"mintc"
)

func build(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "smogen")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestGenerateKinds(t *testing.T) {
	bin := build(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-kind", "ring", "-n", "4"}, "latch R0"},
		{[]string{"-kind", "pipeline", "-n", "3", "-phases", "3"}, "clock 3"},
		{[]string{"-kind", "random", "-seed", "7"}, "clock"},
		{[]string{"-kind", "example1", "-d41", "80"}, "label Ld"},
		{[]string{"-kind", "example2"}, "clock 4"},
		{[]string{"-kind", "fig1"}, "clock 4"},
		{[]string{"-kind", "gaas"}, "RFprech"},
		{[]string{"-kind", "glring", "-n", "4", "-depth", "2"}, "netlist glring-4x2"},
		{[]string{"-kind", "ring", "-n", "4", "-verify"}, "verified: model freezes and solves"},
	}
	for _, tc := range cases {
		out, err := exec.Command(bin, tc.args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%v: %v\n%s", tc.args, err, out)
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("%v: missing %q in:\n%s", tc.args, tc.want, out)
		}
	}
}

func TestGeneratedCircuitsReparse(t *testing.T) {
	// smogen output must feed straight back into smoclk's parsers:
	// build each .smo kind and reparse it here via the library.
	bin := build(t)
	for _, kind := range []string{"ring", "pipeline", "random", "example1", "gaas"} {
		out, err := exec.Command(bin, "-kind", kind).Output()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		f := filepath.Join(t.TempDir(), kind+".smo")
		if err := os.WriteFile(f, out, 0o644); err != nil {
			t.Fatal(err)
		}
		// Reparse through the generate->parse round trip inside the
		// same process to keep the test hermetic.
		if err := reparse(string(out)); err != nil {
			t.Errorf("%s: reparse failed: %v", kind, err)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	bin := build(t)
	for _, args := range [][]string{
		{"-kind", "bogus"},
		{"-kind", "ring", "-n", "5", "-phases", "2"}, // not a multiple
		{"-kind", "glring", "-n", "3"},
		{"-kind", "glring", "-n", "4", "-verify"},
	} {
		if err := exec.Command(bin, args...).Run(); err == nil {
			t.Errorf("args %v: expected failure", args)
		}
	}
}

// reparse round-trips generated text through the public parser and the
// solver.
func reparse(src string) error {
	c, err := mintc.ParseCircuitString(src)
	if err != nil {
		return err
	}
	_, err = mintc.MinTc(c, mintc.Options{})
	return err
}
