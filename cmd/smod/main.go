// Command smod is the latch-timing daemon: the long-running network
// front door over the session layer, serving MinTc / CheckTc /
// Reoptimize / certified solves / delay sweeps / Monte-Carlo campaigns
// for any number of tenants and circuits.
//
//	smod -addr :7070
//	smod -addr :7070 -rate 500 -max-inflight 64 -drain-timeout 10s
//
// One listener speaks two protocols (sniffed per connection): HTTP/JSON
// under /v1/..., and a length-prefixed binary framing for clients that
// open with the 4-byte magic "SMO\x01". GET /metrics, /healthz and
// /readyz expose telemetry and lifecycle.
//
// SIGTERM or SIGINT starts a graceful drain: readiness flips false,
// new requests are refused with the typed drain error, in-flight work
// gets -drain-timeout to finish, still-running streams then receive
// the drain error in-band, and the final counter snapshot is flushed
// to the log before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mintc/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":7070", "listen address (both protocols)")
		rate         = flag.Float64("rate", 0, "admission rate limit, requests/sec (0 = unlimited)")
		burst        = flag.Int("burst", 0, "admission burst allowance (default max(1, rate))")
		maxInflight  = flag.Int("max-inflight", 0, "queue-depth shed ceiling (0 = unlimited)")
		maxSessions  = flag.Int("max-sessions", 64, "registry capacity (LRU-evicted beyond)")
		tenantQuota  = flag.Int("tenant-quota", 0, "max distinct circuits per tenant (0 = unlimited)")
		idleTTL      = flag.Duration("idle-ttl", 0, "evict sessions idle longer than this (0 = never)")
		defDeadline  = flag.Duration("default-deadline", 30*time.Second, "deadline for requests naming none")
		maxDeadline  = flag.Duration("max-deadline", 5*time.Minute, "cap on client-requested deadlines")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain budget for in-flight work")
		writeTimeout = flag.Duration("write-timeout", 15*time.Second, "per-chunk write deadline (slow-client guard)")
		brkThreshold = flag.Int("breaker-threshold", 3, "consecutive decomp verify failures opening the breaker (-1 disables)")
		brkCooldown  = flag.Duration("breaker-cooldown", 30*time.Second, "breaker open duration before a half-open probe")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "smod ", log.LstdFlags|log.Lmsgprefix)
	srv := serve.New(serve.Config{
		MaxSessions:      *maxSessions,
		TenantQuota:      *tenantQuota,
		IdleTTL:          *idleTTL,
		Rate:             *rate,
		Burst:            *burst,
		MaxInflight:      *maxInflight,
		DefaultDeadline:  *defDeadline,
		MaxDeadline:      *maxDeadline,
		DrainTimeout:     *drainTimeout,
		WriteTimeout:     *writeTimeout,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		Logger:           logger,
	})

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()
	logger.Printf("listening on %s (HTTP/JSON + SMO binary)", *addr)

	select {
	case sig := <-sigCh:
		logger.Printf("%s: draining (budget %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			logger.Printf("drain: %v", err)
			os.Exit(1)
		}
		logger.Printf("drain complete")
	case err := <-errCh:
		if err != nil {
			fmt.Fprintf(os.Stderr, "smod: %v\n", err)
			os.Exit(1)
		}
	}
}
