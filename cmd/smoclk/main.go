// Command smoclk analyzes and optimizes the clocking of
// latch-controlled synchronous circuits described in the .smo format.
//
// Design mode (default) finds the minimum cycle time and an optimal
// clock schedule with Algorithm MLP:
//
//	smoclk -f circuit.smo
//	smoclk -f circuit.smo -engine mcr        # min-cycle-ratio engine
//	smoclk -f circuit.smo -engine sim        # simulate the optimum dynamically
//	smoclk -f circuit.smo -baseline nrip     # NRIP / edge-triggered baselines
//	smoclk -f circuit.smo -diagram -svg out.svg
//
// Every solve goes through the unified engine layer, so any registered
// engine is selectable by name (-engine mlp|mcr|decomp|nrip|ettf|sim;
// "lp" is an alias for mlp), can be bounded in time (-timeout 50ms aborts with
// the partial progress reported), and can stream a structured JSONL
// trace of counters and stages (-trace solve.jsonl). -stats prints the
// solve's counters and stage timings. -certify routes the solve
// through the degradation supervisor: the answer is independently
// re-checked against the paper's constraint system (and the LP duality
// gap, for exact engines), failed rungs fall down the engine's
// fallback ladder, and the verdict, gap and trail are printed.
//
// Analysis mode verifies a given schedule (checkTc):
//
//	smoclk -f circuit.smo -check schedule.smo
//
// Additional clock requirements map to the paper's "further
// requirements" hook: -minwidth, -minsep, -skew; -tc pins the cycle
// time. -dump prints the generated linear program.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"mintc"
)

func main() {
	var (
		file     = flag.String("f", "", "circuit description file (.smo); '-' for stdin")
		check    = flag.String("check", "", "schedule file: verify instead of optimize")
		engine   = flag.String("engine", "lp", "solver engine: mlp (aka lp), mcr, decomp, nrip, ettf or sim")
		timeout  = flag.Duration("timeout", 0, "abort the solve after this duration (e.g. 50ms, 2s)")
		trace    = flag.String("trace", "", "stream a structured JSONL solve trace to this file")
		stats    = flag.Bool("stats", false, "print solve statistics (counters and stage timings)")
		certify  = flag.Bool("certify", false, "independently certify the result and fall back through the engine's degradation ladder on failure")
		baseline = flag.String("baseline", "", "run a baseline instead: nrip, ettf or agrawal")
		diagram  = flag.Bool("diagram", false, "print an ASCII timing diagram")
		svgOut   = flag.String("svg", "", "write an SVG timing diagram to this file")
		dump     = flag.Bool("dump", false, "print the generated linear program")
		simulate = flag.Bool("sim", false, "cross-check the schedule by cycle-accurate simulation")
		minWidth = flag.Float64("minwidth", 0, "minimum phase width")
		minSep   = flag.Float64("minsep", 0, "minimum separation between I/O phase pairs")
		skew     = flag.Float64("skew", 0, "clock skew margin")
		fixedTc  = flag.Float64("tc", 0, "pin the cycle time (design at fixed Tc)")
		cycles   = flag.Int("cycles", 2, "cycles shown in diagrams")
		lex      = flag.String("lex", "", "tie-break among optimal schedules: max-widths, min-widths, max-min-width, min-departures, compact")
		param    = flag.Int("parametric", -1, "piecewise-linear Tc*(delay) sweep for this path index")
		paramTo  = flag.Float64("pmax", 200, "upper end of the -parametric sweep")
		gnl      = flag.Bool("gnl", false, "treat -f as a gate-level netlist (.gnl) and extract the timing model first")
		model    = flag.String("model", "linear", "gate delay model for -gnl: unit, linear or elmore")
		toploops = flag.Int("toploops", 0, "report the N most critical loops (cycle-ratio bounds)")
		mcTrials = flag.Int("montecarlo", 0, "run N Monte-Carlo trials with per-cycle delay variation")
		holdOpt  = flag.Bool("hold", false, "design with conservative hold constraints (elements with hold > 0)")
		marginTc = flag.Float64("margin", 0, "at this cycle time, maximize the worst setup margin instead of minimizing Tc")
		objectiv = flag.String("objective", "", "schedule objective at the -tc cycle time: margin (maximize worst setup margin), width (minimize total phase width) or skew (maximize tolerated extra clock skew); runs through the engine layer, so -engine, -certify and -trace apply")
		dotOut   = flag.String("dot", "", "write the circuit graph in Graphviz DOT format to this file")
	)
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "smoclk: -f <circuit.smo> is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg := config{
		check: *check, engine: *engine, baseline: *baseline,
		diagram: *diagram, svgOut: *svgOut, dump: *dump, simulate: *simulate,
		cycles: *cycles, lex: *lex, parametric: *param, paramTo: *paramTo,
		gnl: *gnl, model: *model, toploops: *toploops, dotOut: *dotOut, mcTrials: *mcTrials, marginTc: *marginTc,
		timeout: *timeout, trace: *trace, stats: *stats, certify: *certify,
		opts: mintc.Options{MinPhaseWidth: *minWidth, MinSeparation: *minSep, Skew: *skew, FixedTc: *fixedTc, DesignForHold: *holdOpt},
	}
	if *objectiv != "" {
		if *fixedTc <= 0 {
			fmt.Fprintf(os.Stderr, "smoclk: -objective %s requires -tc (the cycle time to design the schedule at)\n", *objectiv)
			os.Exit(2)
		}
		switch *objectiv {
		case "margin":
			cfg.opts.Objective = mintc.MaxMarginAtTc(*fixedTc)
		case "width":
			cfg.opts.Objective = mintc.MinPhaseWidthAtTc(*fixedTc)
		case "skew":
			cfg.opts.Objective = mintc.MaxSkewBudgetAtTc(*fixedTc)
		default:
			fmt.Fprintf(os.Stderr, "smoclk: unknown -objective %q (want margin, width or skew)\n", *objectiv)
			os.Exit(2)
		}
	}
	if err := run(*file, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "smoclk: %v\n", err)
		os.Exit(1)
	}
}

// config carries the parsed command-line options.
type config struct {
	check, engine, baseline string
	diagram                 bool
	svgOut                  string
	dump, simulate          bool
	cycles                  int
	lex                     string
	parametric              int
	paramTo                 float64
	gnl                     bool
	model                   string
	toploops                int
	mcTrials                int
	marginTc                float64
	dotOut                  string
	timeout                 time.Duration
	trace                   string
	stats                   bool
	certify                 bool
	opts                    mintc.Options
}

var secondaries = map[string]mintc.Secondary{
	"max-widths":     mintc.MaxPhaseWidths,
	"min-widths":     mintc.MinPhaseWidths,
	"max-min-width":  mintc.MaxMinPhaseWidth,
	"min-departures": mintc.MinDepartures,
	"compact":        mintc.CompactSchedule,
}

func run(file string, cfg config) error {
	check, baseline := cfg.check, cfg.baseline
	diagram, svgOut, dump, simulate := cfg.diagram, cfg.svgOut, cfg.dump, cfg.simulate
	opts, cycles := cfg.opts, cfg.cycles
	c, err := loadCircuit(file, cfg)
	if err != nil {
		return err
	}

	if check != "" {
		return runCheck(c, check, opts, simulate)
	}

	if cfg.parametric >= 0 {
		return runParametric(c, cfg)
	}

	var sched *mintc.Schedule
	var d []float64
	switch {
	case cfg.marginTc > 0:
		r, err := mintc.MaxMarginSchedule(c, opts, cfg.marginTc)
		if err != nil {
			return err
		}
		fmt.Printf("margin-optimal schedule at Tc = %.6g: worst setup margin %.6g\n", cfg.marginTc, r.Margin)
		fmt.Println(r.Schedule)
		sched, d = r.Schedule, r.D
	case cfg.lex != "":
		sec, ok := secondaries[cfg.lex]
		if !ok {
			return fmt.Errorf("unknown -lex objective %q", cfg.lex)
		}
		r, err := mintc.MinTcLex(c, opts, sec)
		if err != nil {
			return err
		}
		fmt.Printf("optimal Tc with %s tie-break:\n", cfg.lex)
		fmt.Print(r.Report())
		sched, d = r.Schedule, r.D
	case baseline == "nrip":
		nr, err := mintc.MinTcNRIP(c, opts)
		if err != nil {
			return err
		}
		fmt.Printf("NRIP baseline: Tc = %.6g (edge-triggered start %.6g, borrowing gain %.6g)\n",
			nr.Schedule.Tc, nr.EdgeTriggeredTc, nr.BorrowingGain)
		fmt.Println(nr.Schedule)
		sched = nr.Schedule
	case baseline == "agrawal":
		r, err := mintc.MinTcFrequencySearch(c, 0.5, 0)
		if err != nil {
			return err
		}
		fmt.Printf("frequency-search baseline (symmetric clock, duty 0.5): Tc = %.6g (%d probes)\n", r.Tc, r.Probes)
		fmt.Println(r.Schedule)
		sched = r.Schedule
	case baseline == "ettf":
		et, err := mintc.MinTcEdgeTriggered(c, opts)
		if err != nil {
			return err
		}
		fmt.Printf("edge-triggered baseline: Tc = %.6g (%d constraints, %d pivots)\n",
			et.Schedule.Tc, et.NumConstraints, et.Pivots)
		fmt.Println(et.Schedule)
		sched = et.Schedule
	case baseline != "":
		return fmt.Errorf("unknown baseline %q (want nrip, ettf or agrawal)", baseline)
	default:
		res, err := runEngine(c, cfg)
		if err != nil {
			return err
		}
		if dump {
			// The mlp engine reports the decomposed result (no single
			// monolithic LP to print) above its size threshold, so gate
			// on the detail type, not the engine name.
			if r, ok := res.Detail.(*mintc.Result); ok {
				fmt.Println("\ngenerated linear program:")
				fmt.Print(r.LP.String())
			}
		}
		sched, d = res.Schedule, res.D
	}

	if d == nil {
		// Baselines don't carry departures; derive them by analysis.
		an, err := mintc.CheckTc(c, sched, opts)
		if err != nil {
			return err
		}
		d = an.D
	}
	if diagram {
		fmt.Println()
		fmt.Print(mintc.RenderDiagram(c, sched, d, mintc.RenderOptions{Cycles: cycles}))
	}
	if svgOut != "" {
		if err := os.WriteFile(svgOut, []byte(mintc.RenderSVG(c, sched, d, mintc.RenderOptions{Cycles: cycles})), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", svgOut)
	}
	if cfg.toploops > 0 {
		loops, err := mintc.TopLoops(c, opts, cfg.toploops, 0)
		if err != nil {
			return err
		}
		fmt.Printf("\ntop %d critical loops (cycle-ratio bounds on Tc):\n", len(loops))
		for _, lp := range loops {
			fmt.Printf("  ratio %8.4g  delay %8.4g / %d crossing(s)  %v\n",
				lp.Ratio, lp.Delay, lp.Crossings, lp.Names)
		}
	}
	if cfg.dotOut != "" {
		f, err := os.Create(cfg.dotOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := mintc.WriteDOT(f, c, d); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.dotOut)
	}
	if cfg.mcTrials > 0 {
		rng := rand.New(rand.NewSource(1))
		mc, err := mintc.SimulateMonteCarlo(c, sched, mintc.MCConfig{Trials: cfg.mcTrials}, rng)
		if err != nil {
			return err
		}
		fmt.Printf("monte carlo: %d trials, %d failing, worst observed slack %.6g\n",
			mc.Trials, mc.FailingTrials, mc.WorstSlack)
	}
	if simulate {
		return runSim(c, sched)
	}
	return nil
}

// runEngine solves the design problem through the unified engine layer
// (any registered engine by name, with optional deadline and trace) and
// prints the engine-specific report. The circuit is frozen first and
// the solve runs against the immutable snapshot through a zero-edit
// overlay, so it cannot mutate the model that the diagram, loop and
// simulation reporting read afterwards.
func runEngine(c *mintc.Circuit, cfg config) (*mintc.EngineResult, error) {
	name := cfg.engine
	if name == "lp" { // historical alias for Algorithm MLP
		name = "mlp"
	}
	cc, err := mintc.Freeze(c)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	eopts := mintc.EngineOptions{Core: cfg.opts, Seed: 1}
	if cfg.trace != "" {
		f, err := os.Create(cfg.trace)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rec := mintc.NewRecorder()
		rec.SetSink(mintc.NewTraceWriter(f))
		eopts.Rec = rec
	}
	var res *mintc.EngineResult
	if cfg.certify {
		res, err = mintc.SolveEngineCertifiedOverlay(ctx, name, cc.Overlay(), eopts, mintc.CertifyPolicy{})
	} else {
		res, err = mintc.SolveEngineOverlay(ctx, name, cc.Overlay(), eopts)
	}
	if err != nil {
		if res != nil && cfg.certify {
			printCertificate(res)
		}
		if res != nil && cfg.stats {
			fmt.Printf("partial stats: %s\n", res.Stats)
		}
		return nil, err
	}
	// Dispatch on the detail type, not the requested engine: the
	// certified path may have fallen down the degradation ladder onto a
	// different engine (e.g. a schedule objective asked of mcr is
	// answered by the LP rung), and the trail below reports how.
	switch r := res.Detail.(type) {
	case *mintc.Result:
		fmt.Print(r.Report())
		if !r.Objective.IsMinTc() {
			fmt.Printf("objective %s achieved: %.6g\n", r.Objective, r.ObjectiveValue)
		}
	case *mintc.DecompResult:
		printDecomp(r) // large circuit: mlp routed through the decomposed solver
	case *mintc.MCRResult:
		fmt.Printf("optimal Tc = %.6g (min-cycle-ratio engine, %d probes)\n", r.Tc, r.Probes)
		if len(r.CriticalLoop) > 0 {
			fmt.Printf("critical loop: %v (ratio %.6g)\n", r.CriticalLoop, r.CriticalRatio)
			fmt.Print(r.Explain())
		}
		fmt.Println(r.Schedule)
	case *mintc.NRIPResult:
		fmt.Printf("NRIP engine: Tc = %.6g (edge-triggered start %.6g, borrowing gain %.6g)\n",
			r.Schedule.Tc, r.EdgeTriggeredTc, r.BorrowingGain)
		fmt.Println(r.Schedule)
	case *mintc.EdgeTriggeredResult:
		fmt.Printf("edge-triggered engine: Tc = %.6g (%d constraints, %d pivots)\n",
			r.Schedule.Tc, r.NumConstraints, r.Pivots)
		fmt.Println(r.Schedule)
	case *mintc.SimDetail:
		fmt.Printf("sim engine: simulated the MLP-optimal schedule, Tc = %.6g\n", res.Tc)
		fmt.Println(res.Schedule)
		tr := r.Trace
		switch {
		case len(tr.Violations) > 0:
			fmt.Printf("simulation: %d violations (first: %s)\n", len(tr.Violations), tr.Violations[0])
		case tr.ConvergedAt < 0:
			fmt.Printf("simulation: no periodic steady state (drift %.6g per cycle)\n", tr.Drift())
		default:
			fmt.Printf("simulation: clean; steady state from cycle %d\n", tr.ConvergedAt)
		}
	}
	if cfg.certify {
		printCertificate(res)
	}
	if cfg.stats {
		fmt.Printf("stats: %s\n", res.Stats)
	}
	return res, nil
}

// printDecomp reports the decomposed solver's result: the certified
// optimum plus the per-component breakdown.
func printDecomp(r *mintc.DecompResult) {
	fmt.Printf("optimal Tc = %.6g (decomposed: %d components, %d re-solved, %d closed-form, %d probes)\n",
		r.Tc, r.Components, r.Resolved, r.FastPaths, r.Probes)
	if r.ProbeRounds > 0 {
		fmt.Printf("probe: %d relaxation rounds, %d fanned out across workers, %d warm-potential starts\n",
			r.ProbeRounds, r.ProbeParallelRounds, r.WarmPotentialHits)
	}
	if len(r.CriticalArcs) > 0 {
		fmt.Printf("critical cycle: %d arcs, ratio %.6g\n", len(r.CriticalArcs), r.CriticalRatio)
	}
	fmt.Println(r.Schedule)
}

// printCertificate reports the independent checker's verdict, the LP
// duality gap when the solve carried one, and — whenever more than a
// clean first rung ran — the degradation-ladder trail.
func printCertificate(res *mintc.EngineResult) {
	cert := res.Certificate
	fmt.Printf("certificate: %s\n", cert)
	if cert != nil && !math.IsNaN(cert.DualityGap) {
		fmt.Printf("  duality gap: %.3g\n", cert.DualityGap)
	}
	if len(res.Trail) > 1 || (len(res.Trail) == 1 && !res.Trail[0].Certified) {
		fmt.Println("  fallback trail:")
		for _, a := range res.Trail {
			status := "certified"
			switch {
			case a.Err != "":
				status = "failed: " + a.Err
			case a.Rejected != "":
				status = "rejected: " + a.Rejected
			}
			fmt.Printf("    %-6s (engine %s): %s\n", a.Rung, a.Engine, status)
		}
	}
}

// loadCircuit reads the circuit from an .smo file or, with -gnl, from
// a gate-level netlist followed by timing-model extraction.
func loadCircuit(file string, cfg config) (*mintc.Circuit, error) {
	var r *os.File
	if file == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if !cfg.gnl {
		return mintc.ParseCircuit(r)
	}
	nl, err := mintc.ParseNetlist(r)
	if err != nil {
		return nil, err
	}
	var m mintc.DelayModel
	switch cfg.model {
	case "unit":
		m = mintc.UnitDelay
	case "linear", "":
		m = mintc.LinearDelay
	case "elmore":
		m = mintc.ElmoreDelay
	default:
		return nil, fmt.Errorf("unknown delay model %q (want unit, linear or elmore)", cfg.model)
	}
	c, info, err := nl.Extract(m, mintc.IOPolicy{})
	if err != nil {
		return nil, err
	}
	fmt.Printf("extracted %d synchronizers, %d stages (max gate depth %d) using the %s model\n",
		c.L(), info.Stages, info.MaxDepth, m.Name())
	return c, nil
}

func runParametric(c *mintc.Circuit, cfg config) error {
	if cfg.parametric >= len(c.Paths()) {
		return fmt.Errorf("path index %d out of range (circuit has %d paths)", cfg.parametric, len(c.Paths()))
	}
	p := c.Paths()[cfg.parametric]
	fmt.Printf("parametric sweep of path %d (%s -> %s) over [0, %g]:\n",
		cfg.parametric, c.SyncName(p.From), c.SyncName(p.To), cfg.paramTo)
	segs, err := mintc.ParametricDelay(c, cfg.opts, cfg.parametric, 0, cfg.paramTo)
	if err != nil {
		return err
	}
	for _, s := range segs {
		fmt.Printf("  delay in [%8.4g, %8.4g]: Tc* = %.6g + %.4g*(delay - %.6g)\n",
			s.From, s.To, s.TcAtFrom, s.Slope, s.From)
	}
	if bps := mintc.Breakpoints(segs); len(bps) > 0 {
		fmt.Printf("breakpoints: %v\n", bps)
	}
	return nil
}

func runCheck(c *mintc.Circuit, schedFile string, opts mintc.Options, simulate bool) error {
	f, err := os.Open(schedFile)
	if err != nil {
		return err
	}
	defer f.Close()
	sched, err := mintc.ParseSchedule(f, c.K())
	if err != nil {
		return err
	}
	an, err := mintc.CheckTc(c, sched, opts)
	if err != nil {
		return err
	}
	if an.Feasible {
		fmt.Printf("PASS: schedule %v satisfies all timing constraints\n", sched)
	} else {
		fmt.Printf("FAIL: schedule %v violates timing constraints:\n", sched)
		for _, v := range an.Violations {
			fmt.Printf("  %s\n", v)
		}
	}
	if an.D != nil {
		fmt.Println("setup slacks:")
		for i, s := range an.SetupSlack {
			fmt.Printf("  %-12s %9.6g\n", c.SyncName(i), s)
		}
	}
	if simulate {
		if err := runSim(c, sched); err != nil {
			return err
		}
	}
	if !an.Feasible {
		os.Exit(1)
	}
	return nil
}

func runSim(c *mintc.Circuit, sched *mintc.Schedule) error {
	tr, err := mintc.Simulate(c, sched, mintc.SimConfig{})
	if err != nil {
		return err
	}
	switch {
	case len(tr.Violations) > 0:
		fmt.Printf("simulation: %d violations (first: %s)\n", len(tr.Violations), tr.Violations[0])
	case tr.ConvergedAt < 0:
		fmt.Printf("simulation: no periodic steady state (drift %.6g per cycle)\n", tr.Drift())
	default:
		fmt.Printf("simulation: clean; steady state from cycle %d, departures %v\n", tr.ConvergedAt, tr.SteadyD)
	}
	return nil
}
