package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mintc"
)

const example1SMO = `
clock 2
latch L1 phase 1 setup 10 dq 10
latch L2 phase 2 setup 10 dq 10
latch L3 phase 1 setup 10 dq 10
latch L4 phase 2 setup 10 dq 10
path L1 -> L2 delay 20 label La
path L2 -> L3 delay 20 label Lb
path L3 -> L4 delay 60 label Lc
path L4 -> L1 delay 80 label Ld
`

// cfg returns a config with the flag defaults (notably parametric=-1,
// meaning "no parametric sweep"), mirroring what flag parsing
// produces; tests then override individual fields.
func cfg(mut func(*config)) config {
	c := config{engine: "lp", cycles: 2, parametric: -1, paramTo: 200}
	if mut != nil {
		mut(&c)
	}
	return c
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	var buf strings.Builder
	b := make([]byte, 4096)
	for {
		n, err := r.Read(b)
		buf.Write(b[:n])
		if err != nil {
			break
		}
	}
	return buf.String(), ferr
}

func TestRunOptimize(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	out, err := capture(t, func() error { return run(f, cfg(nil)) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"optimal cycle time: Tc = 110", "phi1", "constraints:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMCREngine(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	out, err := capture(t, func() error { return run(f, cfg(func(c *config) { c.engine = "mcr" })) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "optimal Tc = 110") {
		t.Errorf("mcr output:\n%s", out)
	}
	if !strings.Contains(out, "critical loop") {
		t.Errorf("missing critical loop:\n%s", out)
	}
}

func TestRunBaselines(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	out, err := capture(t, func() error { return run(f, cfg(func(c *config) { c.baseline = "nrip" })) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NRIP baseline") || !strings.Contains(out, "borrowing gain") {
		t.Errorf("nrip output:\n%s", out)
	}
	out, err = capture(t, func() error { return run(f, cfg(func(c *config) { c.baseline = "ettf" })) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "edge-triggered baseline") {
		t.Errorf("ettf output:\n%s", out)
	}
	if err := run(f, cfg(func(c *config) { c.baseline = "bogus" })); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestRunDiagramAndSVG(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	svg := filepath.Join(t.TempDir(), "out.svg")
	out, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.diagram = true; c.svgOut = svg }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "La") {
		t.Errorf("diagram missing strips:\n%s", out)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("svg file malformed")
	}
}

func TestRunDump(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	out, err := capture(t, func() error { return run(f, cfg(func(c *config) { c.dump = true })) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "minimize Tc") || !strings.Contains(out, "subject to") {
		t.Errorf("dump missing LP:\n%s", out)
	}
}

func TestRunParametricFlag(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	out, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.parametric = 3; c.paramTo = 150 }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "breakpoints: [20 100]") {
		t.Errorf("parametric output:\n%s", out)
	}
	if err := run(f, cfg(func(c *config) { c.parametric = 99; c.paramTo = 10 })); err == nil {
		t.Error("out-of-range path accepted")
	}
}

func TestRunLexFlag(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	out, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.lex = "min-departures" }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "min-departures tie-break") {
		t.Errorf("lex output:\n%s", out)
	}
	if err := run(f, cfg(func(c *config) { c.lex = "nonsense" })); err == nil {
		t.Error("unknown lex objective accepted")
	}
}

func TestRunCheckPass(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	s := writeTemp(t, "sched.smo", "schedule tc 110\nphase 1 start 0 width 80\nphase 2 start 80 width 30\n")
	out, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.check = s; c.simulate = true }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "simulation: clean") {
		t.Errorf("check output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent/file.smo", cfg(nil)); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeTemp(t, "bad.smo", "latch A phase 1\n")
	if err := run(bad, cfg(nil)); err == nil {
		t.Error("bad circuit accepted")
	}
	f := writeTemp(t, "ex1.smo", example1SMO)
	if err := run(f, cfg(func(c *config) { c.engine = "nope" })); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestRunOptionsAffectResult(t *testing.T) {
	// A clock-skew margin tightens every propagation constraint; the
	// four-edge loop gains 4×5 ns over its two cycles: Tc* = 120.
	f := writeTemp(t, "ex1.smo", example1SMO)
	out, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.opts = mintc.Options{Skew: 5} }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Tc = 120") {
		t.Errorf("skew ignored (want Tc = 120):\n%s", out)
	}
}

const gnlSMO = `
netlist demo
clock 2
latch L1 phase 1 setup 1 dq 2 d n3 q n0
latch L2 phase 2 setup 1 dq 2 d n2 q n4
gate g1 in n0 out n1 intrinsic 5 drive 1 incap 0.1
gate g2 in n1 out n2 intrinsic 7 drive 1 incap 0.1
gate g3 in n4 out n3 intrinsic 4 drive 1 incap 0.1
`

func TestRunGateLevelNetlist(t *testing.T) {
	f := writeTemp(t, "demo.gnl", gnlSMO)
	out, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.gnl = true; c.model = "linear" }))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"extracted 2 synchronizers", "optimal cycle time"} {
		if !strings.Contains(out, want) {
			t.Errorf("gnl output missing %q:\n%s", want, out)
		}
	}
	if err := run(f, cfg(func(c *config) { c.gnl = true; c.model = "bogus" })); err == nil {
		t.Error("unknown delay model accepted")
	}
}

func TestRunAgrawalBaseline(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	out, err := capture(t, func() error { return run(f, cfg(func(c *config) { c.baseline = "agrawal" })) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "frequency-search baseline") {
		t.Errorf("agrawal output:\n%s", out)
	}
}

func TestRunTopLoopsAndDot(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	dot := filepath.Join(t.TempDir(), "g.dot")
	out, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.toploops = 3; c.dotOut = dot }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "critical loops") || !strings.Contains(out, "ratio") {
		t.Errorf("toploops output:\n%s", out)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "digraph circuit") {
		t.Error("dot file malformed")
	}
}

func TestRunMonteCarloFlag(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	out, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.mcTrials = 10 }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "monte carlo: 10 trials, 0 failing") {
		t.Errorf("monte carlo output:\n%s", out)
	}
}

const holdSMO = `
clock 2
latch A phase 1 setup 1 dq 2
latch B phase 2 setup 1 dq 2 hold 8
path A -> B delay 30 min 0.5
path B -> A delay 10
`

func TestRunHoldFlag(t *testing.T) {
	f := writeTemp(t, "hold.smo", holdSMO)
	out, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.opts = mintc.Options{DesignForHold: true}; c.simulate = false }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "optimal cycle time") {
		t.Errorf("hold design output:\n%s", out)
	}
}

func TestRunMarginFlag(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	out, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.marginTc = 130 }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "worst setup margin") {
		t.Errorf("margin output:\n%s", out)
	}
	if err := run(f, cfg(func(c *config) { c.marginTc = 50 })); err == nil {
		t.Error("margin below Tc* accepted")
	}
}

func TestRunRegistryEngines(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	cases := []struct {
		engine string
		want   string
	}{
		{"nrip", "NRIP engine: Tc ="},
		{"ettf", "edge-triggered engine: Tc ="},
		{"sim", "sim engine: simulated the MLP-optimal schedule, Tc = 110"},
	}
	for _, tc := range cases {
		out, err := capture(t, func() error {
			return run(f, cfg(func(c *config) { c.engine = tc.engine }))
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.engine, err)
		}
		if !strings.Contains(out, tc.want) {
			t.Errorf("%s output missing %q:\n%s", tc.engine, tc.want, out)
		}
	}
}

func TestRunStatsAndTimeoutFlags(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	out, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.stats = true; c.timeout = time.Minute }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stats:") || !strings.Contains(out, "pivots=") {
		t.Errorf("stats output missing counters:\n%s", out)
	}
}

func TestRunTraceFlag(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	tr := filepath.Join(t.TempDir(), "trace.jsonl")
	if _, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.trace = tr }))
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(tr)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	if !strings.Contains(string(blob), `"stage"`) {
		t.Errorf("trace file has no stage events:\n%s", blob)
	}
}

func TestRunCertifyFlag(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	out, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.certify = true }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "certificate: certified optimal") {
		t.Errorf("missing certificate verdict:\n%s", out)
	}
	if !strings.Contains(out, "duality gap:") {
		t.Errorf("missing duality gap:\n%s", out)
	}
}

func TestRunCertifyInfeasible(t *testing.T) {
	f := writeTemp(t, "ex1.smo", example1SMO)
	out, err := capture(t, func() error {
		return run(f, cfg(func(c *config) { c.certify = true; c.opts = mintc.Options{FixedTc: 90} }))
	})
	if err == nil {
		t.Fatal("want an infeasibility error")
	}
	if !strings.Contains(out, "certificate: certified infeasible") {
		t.Errorf("infeasibility not certified in output:\n%s", out)
	}
}
