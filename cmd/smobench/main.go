// Command smobench regenerates the tables and figures of the paper's
// evaluation as text reports.
//
//	smobench -all            # everything, in paper order
//	smobench -fig 7          # one figure (3, 4, 5, 6, 7, 8, 9, 10, 11)
//	smobench -table 1        # Table I
//	smobench -claims         # the quantitative §IV-V side claims
//	smobench -bench out/     # machine-readable engine benchmarks (JSON)
//	smobench -compare old new # wall-clock ratio table between two record sets
//
// The -bench mode sweeps the internal/gen benchmark suite through the
// engine registry and writes one BENCH_<circuit>_<engine>.json per run
// (cycle time, wall-clock, pivot/iteration counters, stage timings).
// Every benchmark solve runs through the degradation supervisor, so
// each record also carries the certification verdict, the "verify"
// stage cost and the fallback/verify-failure/panic counters. A solve
// that hits -timeout records the budget in the structured timeout_s
// field. Restrict the sweep with -engines and bound each solve with
// -timeout; -xl adds the 512/10k workloads, -xxl adds the 100k ones
// and overrides the known-slow (engine, circuit) skip table.
//
// EXPERIMENTS.md records this command's output next to the paper's
// numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"mintc/internal/experiments"
	"mintc/internal/lp"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run every experiment")
		fig     = flag.Int("fig", 0, "reproduce one figure (3-11)")
		table   = flag.Int("table", 0, "reproduce one table (1)")
		claims  = flag.Bool("claims", false, "verify the quantitative side claims")
		stats   = flag.Bool("stats", false, "iteration/pivot statistics over random circuits")
		cache   = flag.Bool("cache", false, "GaAs cache-speed margin study (parametric)")
		mcm     = flag.Bool("mcm", false, "GaAs chip-crossing / multichip-module study")
		borrow  = flag.Bool("borrowing", false, "time-borrowing study on Example 1")
		check   = flag.Bool("checklist", false, "machine-checked reproduction checklist")
		outDir  = flag.String("o", "", "write all reports and graphical artifacts into this directory")
		htmlTo  = flag.String("html", "", "write the artifact bundle plus a browsable index.html into this directory")
		bench   = flag.String("bench", "", "write BENCH_<circuit>_<engine>.json benchmark records into this directory")
		engines = flag.String("engines", "", "comma-separated engine names for -bench (default: all registered)")
		circs   = flag.String("circuits", "", "comma-separated circuit names to restrict -bench to (default: the whole selected suite)")
		timeout = flag.Duration("timeout", 0, "per-solve deadline for -bench (0 = none)")
		trials  = flag.Int("trials", 0, "Monte-Carlo trials for the sim engine during -bench (0 = skip MC)")
		xl      = flag.Bool("xl", false, "include the oversized (>=512-latch) workloads in -bench")
		xxl     = flag.Bool("xxl", false, "include the 100k-synchronizer workloads in -bench and run even the known-slow (engine, circuit) pairs")
		compare = flag.Bool("compare", false, "compare two benchmark record sets: smobench -compare old new (directories of BENCH_*.json, or single records)")
		sweepB  = flag.String("sweepbench", "", "write decomposed-vs-monolithic delay-sweep throughput records (SWEEP_*.json) into this directory")
		lpName  = flag.String("lp", "", "LP solver for every solve: revised (default) or dense")
		profile = flag.String("profile", "", "write a CPU profile of the whole run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile taken at the end of the run to this file")
	)
	flag.Parse()

	if *lpName != "" {
		if err := lp.SetDefaultSolver(*lpName); err != nil {
			fmt.Fprintf(os.Stderr, "smobench: %v\n", err)
			os.Exit(2)
		}
	}
	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smobench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "smobench: %v\n", err)
			os.Exit(1)
		}
		// Flushed on every successful path; error paths os.Exit and
		// forfeit the profile, which is fine for a diagnostics flag.
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		// Like -profile: written on successful completion, forfeited by
		// os.Exit error paths. The GC beforehand makes the profile show
		// live steady-state memory, not whatever garbage the last solve
		// left behind.
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "smobench: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "smobench: %v\n", err)
			}
			f.Close()
		}()
	}

	var (
		out string
		err error
	)
	switch {
	case *compare:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "smobench: -compare needs exactly two arguments: old and new record sets")
			os.Exit(2)
		}
		out, cerr := runCompare(flag.Arg(0), flag.Arg(1))
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "smobench: %v\n", cerr)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	case *sweepB != "":
		files, serr := runSweepBench(*sweepB)
		for _, f := range files {
			fmt.Println("wrote", f)
		}
		if serr != nil {
			fmt.Fprintf(os.Stderr, "smobench: %v\n", serr)
			os.Exit(1)
		}
		return
	case *bench != "":
		// Resolve -engines before any benchmarking work so a typo in
		// the engine list fails fast instead of surfacing mid-sweep.
		names, perr := parseEngines(*engines)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "smobench: %v\n", perr)
			os.Exit(2)
		}
		files, berr := runBench(*bench, names, *circs, *timeout, *trials, *xl, *xxl)
		if berr != nil {
			fmt.Fprintf(os.Stderr, "smobench: %v\n", berr)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Println("wrote", f)
		}
		return
	case *htmlTo != "":
		idx, herr := experiments.WriteHTMLReport(*htmlTo)
		if herr != nil {
			fmt.Fprintf(os.Stderr, "smobench: %v\n", herr)
			os.Exit(1)
		}
		fmt.Println("wrote", idx)
		return
	case *outDir != "":
		files, werr := experiments.WriteArtifacts(*outDir)
		if werr != nil {
			fmt.Fprintf(os.Stderr, "smobench: %v\n", werr)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Println("wrote", f)
		}
		return
	case *all:
		out, err = experiments.All()
	case *stats:
		out, err = experiments.Stats()
	case *cache:
		out, err = experiments.CacheStudy()
	case *mcm:
		out, err = experiments.MCMStudy()
	case *borrow:
		out, err = experiments.BorrowingStudy()
	case *check:
		out, err = experiments.ChecklistReport()
	case *claims:
		out, err = experiments.Claims()
	case *table == 1:
		out, err = experiments.TableI()
	case *fig != 0:
		figs := map[int]func() (string, error){
			3: experiments.Fig3, 4: experiments.Fig4, 5: experiments.Fig5,
			6: experiments.Fig6, 7: experiments.Fig7, 8: experiments.Fig8,
			9: experiments.Fig9, 10: experiments.Fig10, 11: experiments.Fig11,
		}
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "smobench: no figure %d (have 3-11)\n", *fig)
			os.Exit(2)
		}
		out, err = f()
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "smobench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
