package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"mintc/internal/engine"
	"mintc/internal/gen"
	"mintc/internal/obs"
)

// benchRecord is the machine-readable result of one (circuit, engine)
// benchmark run, written as BENCH_<circuit>_<engine>.json.
type benchRecord struct {
	Engine          string  `json:"engine"`
	Circuit         string  `json:"circuit"`
	Latches         int     `json:"latches"`
	Tc              float64 `json:"tc"`
	WallNs          int64   `json:"wall_ns"`
	Pivots          int64   `json:"pivots"`
	SlideIterations int64   `json:"slide_iterations"`
	// The LP stage split and sparse-solver counters (zero for engines
	// that never enter the LP, and for the dense oracle, which reports
	// no nonzero/refactorization telemetry).
	LPAssembleNs       int64 `json:"lp_assemble_ns,omitempty"`
	LPFactorNs         int64 `json:"lp_factor_ns,omitempty"`
	LPPivotNs          int64 `json:"lp_pivot_ns,omitempty"`
	LPNnz              int64 `json:"lp_nnz,omitempty"`
	LPRefactorizations int64 `json:"lp_refactorizations,omitempty"`
	// Reliability telemetry: each benchmark solve runs through the
	// degradation supervisor, so every recorded Tc is independently
	// certified and the certification cost is visible.
	// Allocation telemetry: whole-process malloc deltas around the one
	// certified solve this record describes (one solve per record, so
	// per-op equals per-solve). The numbers the zero-alloc work is
	// gated on.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Decomposition telemetry (zero for the monolithic engines): how
	// many strongly connected components the circuit has, how many were
	// actually solved, and how many took the closed-form fast path.
	Components         int64 `json:"components_total,omitempty"`
	ComponentsResolved int64 `json:"components_resolved,omitempty"`
	DecompFastPaths    int64 `json:"decomp_fastpaths,omitempty"`
	// Probe telemetry (the giant-SCC fast path): synchronous relaxation
	// rounds, the subset fanned out across the chunked worker pool,
	// individual edge relaxations, and probes that warm-started from
	// persisted potentials instead of relaxing from scratch.
	ProbeRounds         int64 `json:"probe_rounds,omitempty"`
	ProbeParallelRounds int64 `json:"probe_parallel_rounds,omitempty"`
	ProbeRelaxations    int64 `json:"probe_relaxations,omitempty"`
	WarmPotentialHits   int64 `json:"warm_potential_hits,omitempty"`

	Certified       bool  `json:"certified"`
	VerifyNs        int64 `json:"verify_ns,omitempty"`
	Fallbacks       int64 `json:"fallbacks,omitempty"`
	VerifyFailures  int64 `json:"verify_failures,omitempty"`
	PanicsRecovered int64 `json:"panics_recovered,omitempty"`
	// TimeoutS is set (to the -timeout budget, in seconds) when the
	// solve hit its deadline: a structured field tools can filter on,
	// instead of a bare error string a human would have to parse. Error
	// stays empty for timeouts.
	TimeoutS float64   `json:"timeout_s,omitempty"`
	Error    string    `json:"error,omitempty"`
	Stats    obs.Stats `json:"stats"`

	// Serving-throughput fields, written by smoload (circuit
	// "serve-mix", engine "serve-<engine>") instead of the solver
	// telemetry above. Qps > 0 marks a record as a serving run.
	Qps       float64 `json:"qps,omitempty"`
	P50Ms     float64 `json:"p50_ms,omitempty"`
	P99Ms     float64 `json:"p99_ms,omitempty"`
	ShedCount int64   `json:"shed_count,omitempty"`
}

// parseEngines resolves a comma-separated -engines flag value against
// the engine registry, so typos fail before any directory is created or
// benchmark solved. An empty value selects every registered engine.
func parseEngines(engines string) ([]string, error) {
	if engines == "" {
		return engine.Names(), nil
	}
	var names []string
	for _, n := range strings.Split(engines, ",") {
		n = strings.TrimSpace(n)
		if _, ok := engine.Get(n); !ok {
			return nil, fmt.Errorf("unknown engine %q (available: %s)",
				n, strings.Join(engine.Names(), ", "))
		}
		names = append(names, n)
	}
	return names, nil
}

// knownSlow lists the (engine, circuit) pairs whose monolithic solves
// take minutes to hours at the 10k/100k scales: the LP-based baselines
// and the cycle-accurate simulator past 10k latches, and everything
// except the decomposed path at 100k. A default sweep skips them so
// -xl never stumbles into a multi-hour solve; -xxl opts into running
// whatever the -engines list asks for anyway.
var knownSlow = map[string]bool{}

func init() {
	huge := []string{"ring-2x10k", "rand-huge-10k"}
	xxl := []string{"ring-2x100k", "rand-100k"}
	for _, c := range huge {
		for _, e := range []string{"ettf", "nrip", "sim"} {
			knownSlow[e+"/"+c] = true
		}
	}
	for _, c := range xxl {
		for _, e := range []string{"ettf", "nrip", "sim", "mcr"} {
			knownSlow[e+"/"+c] = true
		}
	}
}

// runBench solves every suite circuit with each requested engine —
// through the degradation supervisor, so every Tc is certified — and
// writes one JSON record per run into dir. An engine failing on one
// circuit is recorded in that circuit's JSON, not fatal to the sweep;
// a solve that hits the -timeout deadline records the budget in the
// structured timeout_s field. trials > 0 makes the "sim" engine follow
// its deterministic run with a Monte-Carlo campaign of that many
// randomized trials, so the "montecarlo" stage appears in the records.
func runBench(dir string, names []string, circuits string, timeout time.Duration, trials int, xl, xxl bool) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	suite := gen.Suite()
	if xl || xxl {
		suite = append(suite, gen.XLarge()...)
		suite = append(suite, gen.Huge()...)
	}
	if xxl {
		suite = append(suite, gen.XXL()...)
	}
	if circuits != "" {
		// -circuits narrows the sweep to named workloads (bench/sccscale
		// regenerates just the two 100k records this way). Validated
		// against the selected suite so a typo fails instead of silently
		// benchmarking nothing.
		want := make(map[string]bool)
		for _, n := range strings.Split(circuits, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var kept []gen.Benchmark
		for _, bm := range suite {
			if want[bm.Name] {
				kept = append(kept, bm)
				delete(want, bm.Name)
			}
		}
		if len(want) > 0 {
			var missing []string
			for n := range want {
				missing = append(missing, n)
			}
			sort.Strings(missing)
			return nil, fmt.Errorf("unknown circuit(s) %s (is the size tier enabled? -xl / -xxl)",
				strings.Join(missing, ", "))
		}
		suite = kept
	}
	var files []string
	for _, bm := range suite {
		for _, name := range names {
			if !xxl && knownSlow[name+"/"+bm.Name] {
				fmt.Printf("skipped %s/%s (known-slow pair; pass -xxl to run it)\n", bm.Name, name)
				continue
			}
			rec, err := benchOne(bm, name, timeout, trials)
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					rec.TimeoutS = timeout.Seconds()
				} else {
					rec.Error = err.Error()
				}
			}
			path := filepath.Join(dir, fmt.Sprintf("BENCH_%s_%s.json", bm.Name, name))
			blob, merr := json.MarshalIndent(rec, "", "  ")
			if merr != nil {
				return files, merr
			}
			if werr := os.WriteFile(path, append(blob, '\n'), 0o644); werr != nil {
				return files, werr
			}
			files = append(files, path)
		}
	}
	return files, nil
}

func benchOne(bm gen.Benchmark, name string, timeout time.Duration, trials int) (benchRecord, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	res, err := engine.SolveCertified(ctx, name, bm.Circuit,
		engine.Options{Seed: 1, Trials: trials}, engine.Policy{})
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	rec := benchRecord{
		Engine:      name,
		Circuit:     bm.Name,
		Latches:     bm.Circuit.L(),
		WallNs:      wall.Nanoseconds(),
		AllocsPerOp: int64(m1.Mallocs - m0.Mallocs),
		BytesPerOp:  int64(m1.TotalAlloc - m0.TotalAlloc),
	}
	if res != nil {
		rec.Tc = res.Tc
		rec.Stats = res.Stats
		rec.Pivots = res.Stats.Counter(obs.Pivots)
		rec.SlideIterations = res.Stats.Counter(obs.SlideIterations)
		rec.LPAssembleNs = res.Stats.Stage("lp.assemble").Nanoseconds()
		rec.LPFactorNs = res.Stats.Stage("lp.factor").Nanoseconds()
		rec.LPPivotNs = res.Stats.Stage("lp.pivot").Nanoseconds()
		rec.LPNnz = res.Stats.Counter(obs.LPNnz)
		rec.LPRefactorizations = res.Stats.Counter(obs.LPRefactorizations)
		rec.Components = res.Stats.Counter(obs.ComponentsTotal)
		rec.ComponentsResolved = res.Stats.Counter(obs.ComponentsResolved)
		rec.DecompFastPaths = res.Stats.Counter(obs.DecompFastPaths)
		rec.ProbeRounds = res.Stats.Counter(obs.ProbeRounds)
		rec.ProbeParallelRounds = res.Stats.Counter(obs.ProbeParallelRounds)
		rec.ProbeRelaxations = res.Stats.Counter(obs.ProbeRelaxations)
		rec.WarmPotentialHits = res.Stats.Counter(obs.WarmPotentialHits)
		rec.Certified = res.Certificate.Certified()
		rec.VerifyNs = res.Stats.Stage("verify").Nanoseconds()
		rec.Fallbacks = res.Stats.Counter(obs.Fallbacks)
		rec.VerifyFailures = res.Stats.Counter(obs.VerifyFailures)
		rec.PanicsRecovered = res.Stats.Counter(obs.PanicsRecovered)
	}
	return rec, err
}
