package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"mintc/internal/core"
	"mintc/internal/decomp"
	"mintc/internal/gen"
	"mintc/internal/mcr"
	"mintc/internal/obs"
)

// sweepRecord is the machine-readable result of one decomposed-vs-
// monolithic delay-sweep comparison, written as SWEEP_<circuit>.json.
// The same (path, values) sweep runs through the monolithic batched
// simplex path (core.SweepDelaysCompiled) and through the decomposed
// path (decomp.Sweep: re-solve the dirty component, warm global coupling
// probe per value); Speedup is monolithic wall over decomposed wall,
// and ComponentsResolved verifies only the edited path's component was
// re-solved — Components per priming pass plus one per sweep value.
type sweepRecord struct {
	Circuit            string  `json:"circuit"`
	Latches            int     `json:"latches"`
	PathIndex          int     `json:"path_index"`
	Values             int     `json:"values"`
	MonolithicWallNs   int64   `json:"monolithic_wall_ns"`
	DecomposedWallNs   int64   `json:"decomposed_wall_ns"`
	Speedup            float64 `json:"speedup"`
	Components         int64   `json:"components_total"`
	ComponentsResolved int64   `json:"components_resolved"`
	// MaxRelDiff is the largest |monolithic − decomposed| / (1 + |monolithic|)
	// over the sweep — the parity check riding along with the timing.
	MaxRelDiff float64 `json:"max_rel_diff"`
	// Per-point baseline, measured on the giant-single-SCC workload:
	// one cold monolithic MCR solve per value — the cost the
	// parametric walk (monolithic side) and the witness-bound walk
	// (decomposed side) exist to avoid. PerPointSpeedup is per-point
	// wall over the *sweep* wall (min of the two sweep engines).
	PerPointWallNs  int64   `json:"per_point_wall_ns,omitempty"`
	PerPointSpeedup float64 `json:"per_point_speedup,omitempty"`
}

// runSweepBench measures the decomposed sweep against the monolithic
// one on the canonical multi-component workloads (gen.Banks) and
// writes one JSON record per circuit into dir.
func runSweepBench(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ring512, err := gen.Ring(2, 512, 1, 2, func(int) float64 { return 30 })
	if err != nil {
		return nil, err
	}
	var files []string
	for _, w := range []struct {
		name     string
		circuit  *core.Circuit
		values   int
		perPoint bool
	}{
		{"banks-8x250", gen.Banks(8, 250, 1, 2, 30), 40, false},
		{"banks-16x125", gen.Banks(16, 124, 1, 2, 30), 40, false},
		// The giant-single-SCC workload: the whole ring is one
		// component, so the decomposed sweep's only lever is the
		// witness-bound walk and the monolithic side routes through the
		// parametric-Tc walk. The per-point baseline rides along to
		// show what either walk saves.
		{"ring-2x512", ring512, 40, true},
	} {
		rec, err := sweepOne(w.name, w.circuit, w.values, w.perPoint)
		if err != nil {
			return files, fmt.Errorf("%s: %w", w.name, err)
		}
		path := filepath.Join(dir, fmt.Sprintf("SWEEP_%s.json", w.name))
		blob, merr := json.MarshalIndent(rec, "", "  ")
		if merr != nil {
			return files, merr
		}
		if werr := os.WriteFile(path, append(blob, '\n'), 0o644); werr != nil {
			return files, werr
		}
		files = append(files, path)
	}
	return files, nil
}

func sweepOne(name string, c *core.Circuit, nValues int, perPoint bool) (sweepRecord, error) {
	cc, err := c.Freeze()
	if err != nil {
		return sweepRecord{}, err
	}
	// Sweep the first arc of the first bank across a range that crosses
	// the point where that bank becomes the binding one, so the optimum
	// actually moves and both sides do real re-solves.
	const pathIndex = 0
	values := make([]float64, nValues)
	for i := range values {
		values[i] = 80 * float64(i) / float64(nValues-1)
	}
	opts := core.Options{}

	start := time.Now()
	monoTcs, monoErrs := core.SweepDelaysCompiled(cc, opts, pathIndex, values)
	monoWall := time.Since(start)

	rec := obs.New()
	ctx := obs.With(context.Background(), rec)
	start = time.Now()
	decTcs, decErrs := decomp.SweepCtx(ctx, cc, opts, pathIndex, values, decomp.Config{})
	decWall := time.Since(start)

	out := sweepRecord{
		Circuit:          name,
		Latches:          c.L(),
		PathIndex:        pathIndex,
		Values:           nValues,
		MonolithicWallNs: monoWall.Nanoseconds(),
		DecomposedWallNs: decWall.Nanoseconds(),
	}
	if decWall > 0 {
		out.Speedup = float64(monoWall) / float64(decWall)
	}
	stats := rec.Snapshot()
	out.Components = stats.Counter(obs.ComponentsTotal)
	out.ComponentsResolved = stats.Counter(obs.ComponentsResolved)
	for i := range values {
		if monoErrs[i] != nil || decErrs[i] != nil {
			return out, fmt.Errorf("value %d: monolithic err %v, decomposed err %v", i, monoErrs[i], decErrs[i])
		}
		if d := math.Abs(monoTcs[i]-decTcs[i]) / (1 + math.Abs(monoTcs[i])); d > out.MaxRelDiff {
			out.MaxRelDiff = d
		}
	}
	if out.MaxRelDiff > 1e-9 {
		return out, fmt.Errorf("sweep parity broken: max rel diff %g", out.MaxRelDiff)
	}
	if perPoint {
		base := cc.Overlay()
		start = time.Now()
		for i, v := range values {
			s, err := mcr.NewSolverOverlay(base.With(pathIndex, v), opts)
			if err != nil {
				return out, err
			}
			res, err := s.SolveFromCtx(context.Background(), 0)
			if err != nil {
				return out, err
			}
			if d := math.Abs(monoTcs[i]-res.Tc) / (1 + math.Abs(monoTcs[i])); d > 1e-9 {
				return out, fmt.Errorf("per-point parity broken at value %g: %g vs %g", v, res.Tc, monoTcs[i])
			}
		}
		ppWall := time.Since(start)
		out.PerPointWallNs = ppWall.Nanoseconds()
		best := monoWall
		if decWall < best {
			best = decWall
		}
		if best > 0 {
			out.PerPointSpeedup = float64(ppWall) / float64(best)
		}
	}
	return out, nil
}
