package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildOnce compiles the smobench binary into a temp dir so the tests
// can exercise the real CLI surface (flag handling and exit codes).
func buildOnce(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "smobench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestSmobenchFigures(t *testing.T) {
	bin := buildOnce(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-fig", "4"}, "Theorem 1"},
		{[]string{"-fig", "7"}, "Fig. 7"},
		{[]string{"-fig", "11"}, "optimal Tc = 4.4 ns"},
		{[]string{"-table", "1"}, "30,148"},
		{[]string{"-claims"}, "GaAsMIPS"},
	}
	for _, tc := range cases {
		out, err := exec.Command(bin, tc.args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%v: %v\n%s", tc.args, err, out)
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("%v: output missing %q", tc.args, tc.want)
		}
	}
}

func TestSmobenchBadArgs(t *testing.T) {
	bin := buildOnce(t)
	for _, args := range [][]string{{"-fig", "99"}, {}} {
		if err := exec.Command(bin, args...).Run(); err == nil {
			t.Errorf("args %v: expected nonzero exit", args)
		}
	}
}

func TestSmobenchBenchJSON(t *testing.T) {
	bin := buildOnce(t)
	dir := t.TempDir()
	out, err := exec.Command(bin, "-bench", dir, "-engines", "mlp,mcr", "-timeout", "30s").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	path := filepath.Join(dir, "BENCH_example1-80_mlp.json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing benchmark record: %v", err)
	}
	var rec struct {
		Engine    string  `json:"engine"`
		Circuit   string  `json:"circuit"`
		Latches   int     `json:"latches"`
		Tc        float64 `json:"tc"`
		WallNs    int64   `json:"wall_ns"`
		Pivots    int64   `json:"pivots"`
		Certified bool    `json:"certified"`
		VerifyNs  int64   `json:"verify_ns"`
		Fallbacks int64   `json:"fallbacks"`
		Error     string  `json:"error"`
	}
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatalf("unmarshal %s: %v", path, err)
	}
	if rec.Engine != "mlp" || rec.Circuit != "example1-80" {
		t.Errorf("record identity = %q/%q", rec.Engine, rec.Circuit)
	}
	if rec.Latches != 4 || rec.Tc != 110 || rec.WallNs <= 0 || rec.Pivots == 0 {
		t.Errorf("record values: %+v", rec)
	}
	if !rec.Certified || rec.VerifyNs <= 0 {
		t.Errorf("benchmark solve not certified (certified=%v verify_ns=%d)", rec.Certified, rec.VerifyNs)
	}
	if rec.Fallbacks != 0 {
		t.Errorf("clean benchmark took %d fallbacks", rec.Fallbacks)
	}
	if rec.Error != "" {
		t.Errorf("unexpected error in record: %s", rec.Error)
	}
	// The mcr record must exist for the same circuit and agree on Tc.
	blob, err = os.ReadFile(filepath.Join(dir, "BENCH_example1-80_mcr.json"))
	if err != nil {
		t.Fatalf("missing mcr record: %v", err)
	}
	var mcr struct {
		Tc float64 `json:"tc"`
	}
	if err := json.Unmarshal(blob, &mcr); err != nil {
		t.Fatal(err)
	}
	if mcr.Tc != 110 {
		t.Errorf("mcr Tc = %g, want 110", mcr.Tc)
	}
}

func TestSmobenchBenchUnknownEngine(t *testing.T) {
	bin := buildOnce(t)
	dir := t.TempDir()
	// A typo anywhere in the list must fail fast, before any record is
	// benchmarked or written, and list what is actually available.
	out, err := exec.Command(bin, "-bench", dir, "-engines", "mlp,nope").CombinedOutput()
	if err == nil {
		t.Fatalf("expected nonzero exit, got:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown engine") {
		t.Errorf("stderr missing engine diagnostic:\n%s", out)
	}
	if !strings.Contains(string(out), "available:") || !strings.Contains(string(out), "mcr") {
		t.Errorf("stderr should list the registered engines:\n%s", out)
	}
	if entries, rerr := os.ReadDir(dir); rerr == nil && len(entries) != 0 {
		t.Errorf("fail-fast validation still wrote %d record(s)", len(entries))
	}
}

func TestSmobenchStats(t *testing.T) {
	bin := buildOnce(t)
	out, err := exec.Command(bin, "-stats").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "disagreements (Theorem 1): 0") {
		t.Errorf("stats output:\n%s", out)
	}
}
