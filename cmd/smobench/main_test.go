package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildOnce compiles the smobench binary into a temp dir so the tests
// can exercise the real CLI surface (flag handling and exit codes).
func buildOnce(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "smobench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestSmobenchFigures(t *testing.T) {
	bin := buildOnce(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-fig", "4"}, "Theorem 1"},
		{[]string{"-fig", "7"}, "Fig. 7"},
		{[]string{"-fig", "11"}, "optimal Tc = 4.4 ns"},
		{[]string{"-table", "1"}, "30,148"},
		{[]string{"-claims"}, "GaAsMIPS"},
	}
	for _, tc := range cases {
		out, err := exec.Command(bin, tc.args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%v: %v\n%s", tc.args, err, out)
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("%v: output missing %q", tc.args, tc.want)
		}
	}
}

func TestSmobenchBadArgs(t *testing.T) {
	bin := buildOnce(t)
	for _, args := range [][]string{{"-fig", "99"}, {}} {
		if err := exec.Command(bin, args...).Run(); err == nil {
			t.Errorf("args %v: expected nonzero exit", args)
		}
	}
}

func TestSmobenchStats(t *testing.T) {
	bin := buildOnce(t)
	out, err := exec.Command(bin, "-stats").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "disagreements (Theorem 1): 0") {
		t.Errorf("stats output:\n%s", out)
	}
}
