package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// runCompare reads two sets of BENCH_*.json records (each argument is a
// directory of records, or a single record file) and renders a
// wall-clock ratio table keyed by circuit/engine: the before/after view
// of a performance change. Runs present on only one side are listed
// separately; timed-out runs show their budget instead of a ratio. The
// summary line is the geometric mean speedup over the comparable runs.
func runCompare(oldPath, newPath string) (string, error) {
	oldRecs, err := loadRecords(oldPath)
	if err != nil {
		return "", err
	}
	newRecs, err := loadRecords(newPath)
	if err != nil {
		return "", err
	}

	keys := make([]string, 0, len(oldRecs))
	for k := range oldRecs {
		if _, ok := newRecs[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %12s %12s %9s\n", "circuit/engine", "old", "new", "speedup")
	logSum, n := 0.0, 0
	for _, k := range keys {
		o, nw := oldRecs[k], newRecs[k]
		if o.Qps > 0 || nw.Qps > 0 {
			continue // serving records get their own table below
		}
		ocell, ncell := wallCell(o), wallCell(nw)
		ratio := "n/a"
		if o.TimeoutS == 0 && nw.TimeoutS == 0 && o.Error == "" && nw.Error == "" && nw.WallNs > 0 {
			r := float64(o.WallNs) / float64(nw.WallNs)
			ratio = fmt.Sprintf("%8.2fx", r)
			logSum += math.Log(r)
			n++
		}
		fmt.Fprintf(&b, "%-32s %12s %12s %9s\n", k, ocell, ncell, ratio)
	}
	if n > 0 {
		fmt.Fprintf(&b, "geomean speedup over %d comparable runs: %.2fx\n", n, math.Exp(logSum/float64(n)))
	}
	// Probe telemetry, for runs where either side exercised the MCR
	// probe: iteration-count changes (rounds, edge relaxations) are the
	// mechanism behind a wall-clock ratio, and warm-potential hits show
	// whether incremental re-solves actually engaged.
	probeHeader := false
	for _, k := range keys {
		o, nw := oldRecs[k], newRecs[k]
		if o.ProbeRounds == 0 && nw.ProbeRounds == 0 && o.WarmPotentialHits == 0 && nw.WarmPotentialHits == 0 {
			continue
		}
		if !probeHeader {
			fmt.Fprintf(&b, "\n%-32s %18s %22s %14s %12s\n",
				"probe telemetry", "rounds", "relaxations", "par rounds", "warm hits")
			probeHeader = true
		}
		fmt.Fprintf(&b, "%-32s %18s %22s %14s %12s\n", k,
			counterCell(o.ProbeRounds, nw.ProbeRounds),
			counterCell(o.ProbeRelaxations, nw.ProbeRelaxations),
			counterCell(o.ProbeParallelRounds, nw.ProbeParallelRounds),
			counterCell(o.WarmPotentialHits, nw.WarmPotentialHits))
	}
	// Serving-throughput records (smoload runs): the ratio that matters
	// is queries per second, with tail latency and shed volume alongside
	// — a QPS "win" bought by shedding harder is not a win.
	serveHeader := false
	for _, k := range keys {
		o, nw := oldRecs[k], newRecs[k]
		if o.Qps == 0 && nw.Qps == 0 {
			continue
		}
		if !serveHeader {
			fmt.Fprintf(&b, "\n%-32s %10s %10s %9s %16s %16s %12s\n",
				"serving throughput", "old qps", "new qps", "ratio", "p50 ms", "p99 ms", "shed")
			serveHeader = true
		}
		ratio := "n/a"
		if o.Qps > 0 && nw.Qps > 0 {
			ratio = fmt.Sprintf("%8.2fx", nw.Qps/o.Qps)
		}
		fmt.Fprintf(&b, "%-32s %10.1f %10.1f %9s %16s %16s %12s\n", k,
			o.Qps, nw.Qps, ratio,
			fmt.Sprintf("%.2f→%.2f", o.P50Ms, nw.P50Ms),
			fmt.Sprintf("%.2f→%.2f", o.P99Ms, nw.P99Ms),
			counterCell(o.ShedCount, nw.ShedCount))
	}
	for k := range oldRecs {
		if _, ok := newRecs[k]; !ok {
			fmt.Fprintf(&b, "only in old: %s\n", k)
		}
	}
	for k := range newRecs {
		if _, ok := oldRecs[k]; !ok {
			fmt.Fprintf(&b, "only in new: %s\n", k)
		}
	}
	return b.String(), nil
}

// counterCell renders an old→new counter pair compactly.
func counterCell(o, n int64) string {
	return fmt.Sprintf("%d→%d", o, n)
}

// wallCell formats one record's wall clock for the table, or the
// structured failure that preempted it.
func wallCell(r benchRecord) string {
	switch {
	case r.TimeoutS > 0:
		return fmt.Sprintf("timeout %gs", r.TimeoutS)
	case r.Error != "":
		return "error"
	default:
		return fmt.Sprintf("%.3fs", float64(r.WallNs)/1e9)
	}
}

// loadRecords reads benchmark records from a directory of BENCH_*.json
// files or from one such file, keyed by circuit/engine.
func loadRecords(path string) (map[string]benchRecord, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	files := []string{path}
	if fi.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "BENCH_*.json"))
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("no BENCH_*.json records in %s", path)
		}
	}
	recs := make(map[string]benchRecord, len(files))
	for _, f := range files {
		blob, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var r benchRecord
		if err := json.Unmarshal(blob, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		if r.Circuit == "" || r.Engine == "" {
			return nil, fmt.Errorf("%s: not a benchmark record (missing circuit/engine)", f)
		}
		recs[r.Circuit+"/"+r.Engine] = r
	}
	return recs, nil
}
