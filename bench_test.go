// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact), the quantitative §IV–V
// claims, and ablations over the design choices called out in
// DESIGN.md (MLP update modes, LP versus min-cycle-ratio engines,
// scaling with circuit size).
//
// Run with: go test -bench=. -benchmem
package mintc_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mintc"
	"mintc/internal/circuits"
	"mintc/internal/core"
	"mintc/internal/ettf"
	"mintc/internal/experiments"
	"mintc/internal/gen"
	"mintc/internal/mcr"
	"mintc/internal/nrip"
	"mintc/internal/sim"
)

// --- Figures and tables ---

// BenchmarkFig3ClockModel builds and validates the 2-, 3- and 4-phase
// reference clocks of Fig. 3.
func BenchmarkFig3ClockModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4TheoremToy solves the Theorem 1 geometric toy problem.
func BenchmarkFig4TheoremToy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5BuildExample1 constructs the Example 1 circuit.
func BenchmarkFig5BuildExample1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := circuits.Example1(80); c.L() != 4 {
			b.Fatal("bad circuit")
		}
	}
}

// BenchmarkFig6Example1Solve runs Algorithm MLP on the three Fig. 6
// design points (Δ41 = 80, 100, 120 → Tc = 110, 120, 140).
func BenchmarkFig6Example1Solve(b *testing.B) {
	for _, d41 := range []float64{80, 100, 120} {
		b.Run(fmt.Sprintf("d41=%g", d41), func(b *testing.B) {
			c := circuits.Example1(d41)
			want := circuits.Example1OptimalTc(d41)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := core.MinTc(c, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if math.Abs(r.Schedule.Tc-want) > 1e-6 {
					b.Fatalf("Tc = %g, want %g", r.Schedule.Tc, want)
				}
			}
		})
	}
}

// BenchmarkFig7Sweep regenerates the full Tc-versus-Δ41 curve (MLP,
// NRIP, edge-triggered), the paper's central comparison figure.
func BenchmarkFig7Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7Sweep(10)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 15 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig8BuildExample2 constructs the Example 2 reconstruction.
func BenchmarkFig8BuildExample2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := circuits.Example2(); c.L() != 11 {
			b.Fatal("bad circuit")
		}
	}
}

// BenchmarkFig9Example2 reruns the MLP-versus-NRIP comparison whose
// gap the paper reports as 35%.
func BenchmarkFig9Example2(b *testing.B) {
	c := circuits.Example2()
	for i := 0; i < b.N; i++ {
		opt, err := core.MinTc(c, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		nr, err := nrip.MinTc(c, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if g := nrip.Gap(nr.Schedule.Tc, opt.Schedule.Tc); g < 0.30 || g > 0.40 {
			b.Fatalf("gap %g out of band", g)
		}
	}
}

// BenchmarkFig10BuildGaAs constructs the GaAs MIPS timing model.
func BenchmarkFig10BuildGaAs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := circuits.GaAsMIPS(); c.L() != 18 {
			b.Fatal("bad model")
		}
	}
}

// BenchmarkFig11GaAs measures the full optimal-clock computation on
// the 91-constraint GaAs model — the paper's "hardly noticeable ...
// a few seconds on a DECStation 3100" data point.
func BenchmarkFig11GaAs(b *testing.B) {
	c := circuits.GaAsMIPS()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := core.MinTc(c, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if math.Abs(r.Schedule.Tc-4.4) > 1e-6 || r.NumConstraints != 91 {
			b.Fatalf("Tc = %g rows = %d", r.Schedule.Tc, r.NumConstraints)
		}
	}
}

// BenchmarkTableITransistorCounts regenerates the Table I inventory.
func BenchmarkTableITransistorCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.TableI()
		if err != nil || len(s) == 0 {
			b.Fatal("table failed")
		}
	}
}

// BenchmarkAppendixFig1ConstraintGen generates the full constraint set
// of the appendix's 11-latch four-phase circuit.
func BenchmarkAppendixFig1ConstraintGen(b *testing.B) {
	c := circuits.Fig1(circuits.DefaultFig1Delays(), 2, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, _, rows := core.BuildLP(c, core.Options{})
		if p.NumConstraints() != len(rows) {
			b.Fatal("row mismatch")
		}
	}
}

// --- §IV-V claims ---

// BenchmarkSimplexPivots tracks the pivots-per-constraint ratio on the
// paper's examples (claim: the simplex reaches the optimum in n..3n
// steps on average).
func BenchmarkSimplexPivots(b *testing.B) {
	cases := []struct {
		name string
		c    *core.Circuit
	}{
		{"Example1", circuits.Example1(80)},
		{"Fig1", circuits.Fig1(circuits.DefaultFig1Delays(), 2, 3)},
		{"GaAs", circuits.GaAsMIPS()},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var pivots, rows int
			for i := 0; i < b.N; i++ {
				r, err := core.MinTc(tc.c, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				pivots, rows = r.Pivots, r.NumConstraints
			}
			b.ReportMetric(float64(pivots), "pivots")
			b.ReportMetric(float64(pivots)/float64(rows), "pivots/row")
		})
	}
}

// BenchmarkMLPUpdateIterations tracks the departure-update iteration
// count (claim: usually 2-3, sometimes zero).
func BenchmarkMLPUpdateIterations(b *testing.B) {
	c := circuits.GaAsMIPS()
	var iters int
	for i := 0; i < b.N; i++ {
		r, err := core.MinTc(c, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		iters = r.UpdateIterations
	}
	b.ReportMetric(float64(iters), "iterations")
}

// --- Ablations ---

// BenchmarkAblationUpdateMode compares the three MLP update strategies
// (paper: Jacobi in the listing; Gauss–Seidel and event-driven noted
// as refinements).
func BenchmarkAblationUpdateMode(b *testing.B) {
	c := circuits.GaAsMIPS()
	for _, mode := range []core.UpdateMode{core.Jacobi, core.GaussSeidel, core.EventDriven} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.MinTc(c, core.Options{Update: mode}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEngine compares the LP (Algorithm MLP) engine with
// the min-cycle-ratio engine the paper's conclusion anticipates, on
// growing random circuits.
func BenchmarkAblationEngine(b *testing.B) {
	sizes := []int{10, 40, 160}
	for _, size := range sizes {
		rng := rand.New(rand.NewSource(int64(size)))
		c := gen.Random(rng, gen.RandomConfig{MaxSyncs: size, MaxPhases: 4, EdgeFactor: 2})
		// Make sure it is solvable before timing.
		if _, err := core.MinTc(c, core.Options{}); err != nil {
			continue
		}
		b.Run(fmt.Sprintf("lp/l=%d", c.L()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.MinTc(c, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("mcr/l=%d", c.L()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mcr.Solve(c, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMCRExactVsBinary compares witness-jumping against
// plain bisection inside the min-cycle-ratio engine.
func BenchmarkAblationMCRExactVsBinary(b *testing.B) {
	c := circuits.GaAsMIPS()
	b.Run("witness", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mcr.Solve(c, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mcr.SolveBinary(c, core.Options{}, 1e-7); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBaselines times the two baselines next to the
// optimal engine on Example 2.
func BenchmarkAblationBaselines(b *testing.B) {
	c := circuits.Example2()
	b.Run("mlp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MinTc(c, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nrip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nrip.MinTc(c, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ettf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ettf.MinTc(c, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScalingRings measures MinTc on growing latch rings (the
// paper's complexity discussion: constraints grow linearly in l).
func BenchmarkScalingRings(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		c, err := gen.Ring(2, n, 1, 2, func(i int) float64 { return float64(10 + i%7) })
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("lp/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MinTc(c, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("mcr/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mcr.Solve(c, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulationGaAs measures the dynamic validator.
func BenchmarkSimulationGaAs(b *testing.B) {
	c := circuits.GaAsMIPS()
	r, err := core.MinTc(c, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(c, r.Schedule, sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPI exercises the façade end to end (parse → solve →
// render), the path a downstream user takes.
func BenchmarkPublicAPI(b *testing.B) {
	src := `
clock 2
latch L1 phase 1 setup 10 dq 10
latch L2 phase 2 setup 10 dq 10
path L1 -> L2 delay 20
path L2 -> L1 delay 60
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := mintc.ParseCircuitString(src)
		if err != nil {
			b.Fatal(err)
		}
		r, err := mintc.MinTc(c, mintc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if s := mintc.RenderDiagram(c, r.Schedule, r.D, mintc.RenderOptions{}); len(s) == 0 {
			b.Fatal("empty diagram")
		}
	}
}

// BenchmarkSuite runs the optimal engine over the named benchmark
// circuits (paper examples + synthetic workloads).
func BenchmarkSuite(b *testing.B) {
	for _, bench := range gen.Suite() {
		b.Run(bench.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.MinTc(bench.Circuit, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if bench.OptimalTc > 0 && math.Abs(r.Schedule.Tc-bench.OptimalTc) > 1e-6*(1+bench.OptimalTc) {
					b.Fatalf("Tc = %g, oracle %g", r.Schedule.Tc, bench.OptimalTc)
				}
			}
		})
	}
}

// BenchmarkAblationParametricVsSampling compares the parametric
// reconstruction of the Fig. 7 curve (a handful of LP solves) against
// naive point sampling (one solve per point).
func BenchmarkAblationParametricVsSampling(b *testing.B) {
	b.Run("parametric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := circuits.Example1(0)
			segs, err := core.ParametricDelay(c, core.Options{}, 3, 0, 140)
			if err != nil {
				b.Fatal(err)
			}
			if len(segs) != 3 {
				b.Fatalf("segments = %d", len(segs))
			}
		}
	})
	b.Run("sampling15", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for d := 0.0; d <= 140; d += 10 {
				if _, err := core.MinTc(circuits.Example1(d), core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkLexTieBreak measures the cost of the duty-cycle style
// secondary optimization over plain MinTc.
func BenchmarkLexTieBreak(b *testing.B) {
	c := circuits.GaAsMIPS()
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MinTc(c, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("max-min-width", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MinTcLex(c, core.Options{}, core.MaxMinPhaseWidth); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompiledEvaluator measures the LEADOUT-style repeated
// analysis against the from-scratch CheckTc on the GaAs model.
func BenchmarkCompiledEvaluator(b *testing.B) {
	c := circuits.GaAsMIPS()
	r, err := core.MinTc(c, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("CheckTc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.CheckTc(c, r.Schedule, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Evaluator", func(b *testing.B) {
		ev, err := core.NewEvaluator(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.Check(r.Schedule)
		}
	})
}
